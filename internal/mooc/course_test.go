package mooc

import (
	"strings"
	"testing"
)

func fullTranscript(hw, proj, final float64) *Transcript {
	p := DefaultPolicy()
	t := NewTranscript(p)
	for i := range t.Homework {
		t.Homework[i] = hw
	}
	for i := range t.Projects {
		t.Projects[i] = proj
	}
	t.Final = final
	return t
}

func TestCertificatePaths(t *testing.T) {
	p := DefaultPolicy()
	// Strong everywhere: Mastery.
	if c := fullTranscript(0.9, 0.9, 0.9).Certificate(p); c != "Mastery" {
		t.Errorf("certificate = %q, want Mastery", c)
	}
	// Strong homework+final, no projects: Accomplishment.
	tr := fullTranscript(0.9, -1, 0.9)
	for i := range tr.Projects {
		tr.Projects[i] = -1
	}
	if c := tr.Certificate(p); c != "Accomplishment" {
		t.Errorf("certificate = %q, want Accomplishment", c)
	}
	// No final: nothing, regardless of homework.
	tr2 := fullTranscript(1, 1, -1)
	tr2.Final = -1
	if c := tr2.Certificate(p); c != "" {
		t.Errorf("certificate = %q, want none (no final)", c)
	}
	// Failing grade: nothing.
	if c := fullTranscript(0.2, 0.9, 0.2).Certificate(p); c != "" {
		t.Errorf("certificate = %q, want none (failed)", c)
	}
}

func TestHomeworkDropHelps(t *testing.T) {
	p := DefaultPolicy()
	tr := NewTranscript(p)
	for i := range tr.Homework {
		tr.Homework[i] = 1
	}
	tr.Homework[0] = 0 // one missed homework
	tr.Final = 1
	if g := tr.CourseGrade(p); g < 0.99 {
		t.Errorf("grade with one dropped zero = %g, want ~1", g)
	}
	// Two zeros: only one dropped.
	tr.Homework[1] = 0
	if g := tr.CourseGrade(p); g >= 0.99 {
		t.Errorf("two zeros should hurt: %g", g)
	}
}

func TestCourseGradeWeights(t *testing.T) {
	p := DefaultPolicy()
	tr := fullTranscript(1, -1, 0)
	tr.Final = 0
	// Homework 1.0, final 0: grade = 0.5.
	if g := tr.CourseGrade(p); g != 0.5 {
		t.Errorf("grade = %g, want 0.5", g)
	}
}

func TestTranscriptString(t *testing.T) {
	s := fullTranscript(0.8, 0.8, 0.8).String()
	if !strings.Contains(s, "Mastery") {
		t.Errorf("String() = %q", s)
	}
	s2 := NewTranscript(DefaultPolicy()).String()
	if !strings.Contains(s2, "no certificate") {
		t.Errorf("String() = %q", s2)
	}
}

func TestWeek2HomeworkSelfGrades(t *testing.T) {
	for _, user := range []string{"x", "y", "zara"} {
		a := GenerateWeek2Homework(user, 6)
		if len(a.Questions) != 6 {
			t.Fatal("question count")
		}
		answers := make([]string, len(a.Questions))
		for i, q := range a.Questions {
			answers[i] = q.Answer
			if q.Prompt == "" {
				t.Error("empty prompt")
			}
		}
		if got := GradeAssignment(a, answers); got != 6 {
			t.Errorf("user %s: reference answers scored %d/6", user, got)
		}
		for i := range answers {
			answers[i] = "wrong!"
		}
		if got := GradeAssignment(a, answers); got != 0 {
			t.Errorf("user %s: garbage scored %d", user, got)
		}
	}
}

func TestLayoutHomeworkSelfGrades(t *testing.T) {
	for _, user := range []string{"kim", "lee"} {
		for _, week := range []int{6, 7} {
			a := GenerateLayoutHomework(week, user, 4)
			if len(a.Questions) != 4 {
				t.Fatal("question count")
			}
			answers := make([]string, len(a.Questions))
			for i, q := range a.Questions {
				answers[i] = q.Answer
			}
			if got := GradeAssignment(a, answers); got != 4 {
				t.Errorf("%s week %d: reference answers scored %d/4", user, week, got)
			}
			for i := range answers {
				answers[i] = "nope"
			}
			if got := GradeAssignment(a, answers); got != 0 {
				t.Errorf("%s week %d: garbage scored %d", user, week, got)
			}
		}
	}
}

func TestFinalExamCoversAllWeeks(t *testing.T) {
	a := GenerateFinalExam("dana", 10)
	if len(a.Questions) != 10 {
		t.Fatal("question count")
	}
	answers := make([]string, len(a.Questions))
	for i, q := range a.Questions {
		answers[i] = q.Answer
		if q.Week != 10 {
			t.Errorf("question %d tagged week %d", i, q.Week)
		}
	}
	if got := GradeAssignment(a, answers); got != 10 {
		t.Errorf("reference answers scored %d/10", got)
	}
	// The exam must span topic families: look for distinctive prompt
	// fragments from logic, BDD, SAT, placement and routing questions.
	joined := ""
	for _, q := range a.Questions {
		joined += q.Prompt + "\n"
	}
	for _, frag := range []string{"tautology", "ROBDD", "CNF", "quadratic optimum", "two-layer grid"} {
		if !strings.Contains(joined, frag) {
			t.Errorf("final exam missing a %q question", frag)
		}
	}
}

func TestLayoutHomeworkIndividualized(t *testing.T) {
	a := GenerateLayoutHomework(6, "kim", 4)
	b := GenerateLayoutHomework(6, "lee", 4)
	diff := false
	for i := range a.Questions {
		if a.Questions[i].Prompt != b.Questions[i].Prompt {
			diff = true
		}
	}
	if !diff {
		t.Error("different users should get different layout variants")
	}
}

func TestWeek2HomeworkIndividualized(t *testing.T) {
	a := GenerateWeek2Homework("alice", 4)
	b := GenerateWeek2Homework("bob", 4)
	diff := false
	for i := range a.Questions {
		if a.Questions[i].Prompt != b.Questions[i].Prompt {
			diff = true
		}
	}
	if !diff {
		t.Error("different users should get different variants")
	}
	a2 := GenerateWeek2Homework("alice", 4)
	for i := range a.Questions {
		if a.Questions[i].Prompt != a2.Questions[i].Prompt {
			t.Fatal("same user should get a stable assignment")
		}
	}
}
