package mooc

import (
	"fmt"
	"math/rand"
	"strings"

	"vlsicad/internal/cube"
)

// Randomized homework generation (Section 2.2): problems are
// over-supplied and each participant receives an individualized
// variant, generated and *graded by the course's own engines* — the
// mechanism that made machine grading rigorous.

// Question is one auto-gradable homework item.
type Question struct {
	ID     string
	Week   int
	Prompt string
	// Check grades a free-text answer.
	Check func(answer string) bool
	// Answer is a correct reference answer (for tests and solutions).
	Answer string
}

// Assignment is one participant's individualized homework.
type Assignment struct {
	Week      int
	User      string
	Questions []Question
}

// GenerateHomework builds the week's assignment for a user. The
// (week, user) pair seeds the variant choice, so every participant
// gets a stable but individual problem set — the paper's "aggressive
// randomization".
func GenerateHomework(week int, user string, questionsPerSet int) Assignment {
	seed := int64(week) * 1_000_003
	for _, r := range user {
		seed = seed*131 + int64(r)
	}
	rng := rand.New(rand.NewSource(seed))
	a := Assignment{Week: week, User: user}
	for q := 0; q < questionsPerSet; q++ {
		switch (week + q) % 3 {
		case 0:
			a.Questions = append(a.Questions, tautologyQuestion(week, q, rng))
		case 1:
			a.Questions = append(a.Questions, cofactorQuestion(week, q, rng))
		default:
			a.Questions = append(a.Questions, satcountQuestion(week, q, rng))
		}
	}
	return a
}

func randomCover(rng *rand.Rand, n, k int) *cube.Cover {
	f := cube.NewCover(n)
	for i := 0; i < k; i++ {
		c := cube.NewCube(n)
		any := false
		for v := 0; v < n; v++ {
			switch rng.Intn(3) {
			case 0:
				c[v] = cube.Pos
				any = true
			case 1:
				c[v] = cube.Neg
				any = true
			}
		}
		if any {
			f.Add(c)
		}
	}
	return f
}

func coverText(f *cube.Cover) string {
	var rows []string
	for _, c := range f.Cubes {
		row := make([]byte, len(c))
		for i, l := range c {
			switch l {
			case cube.Pos:
				row[i] = '1'
			case cube.Neg:
				row[i] = '0'
			default:
				row[i] = '-'
			}
		}
		rows = append(rows, string(row))
	}
	return strings.Join(rows, " ")
}

func tautologyQuestion(week, q int, rng *rand.Rand) Question {
	n := 3 + rng.Intn(2)
	f := randomCover(rng, n, 3+rng.Intn(5))
	// Half the time, force a tautology by adding x + x'.
	if rng.Intn(2) == 0 {
		a := cube.NewCube(n)
		a[0] = cube.Pos
		b := cube.NewCube(n)
		b[0] = cube.Neg
		f.Add(a)
		f.Add(b)
	}
	want := f.IsTautology()
	wantStr := "no"
	if want {
		wantStr = "yes"
	}
	return Question{
		ID:   fmt.Sprintf("hw%d.q%d", week, q+1),
		Week: week,
		Prompt: fmt.Sprintf("Is the cover {%s} over %d variables a tautology? (yes/no)",
			coverText(f), n),
		Check: func(ans string) bool {
			switch strings.ToLower(strings.TrimSpace(ans)) {
			case "yes", "true", "1":
				return want
			case "no", "false", "0":
				return !want
			default:
				return false
			}
		},
		Answer: wantStr,
	}
}

func cofactorQuestion(week, q int, rng *rand.Rand) Question {
	n := 3 + rng.Intn(2)
	f := randomCover(rng, n, 2+rng.Intn(4))
	v := rng.Intn(n)
	pos := f.Cofactor(v, true)
	count := len(pos.Minterms())
	return Question{
		ID:   fmt.Sprintf("hw%d.q%d", week, q+1),
		Week: week,
		Prompt: fmt.Sprintf("For the cover {%s} over %d variables, how many minterms does the positive cofactor with respect to x%d have?",
			coverText(f), n, v+1),
		Check: func(ans string) bool {
			return strings.TrimSpace(ans) == fmt.Sprintf("%d", count)
		},
		Answer: fmt.Sprintf("%d", count),
	}
}

func satcountQuestion(week, q int, rng *rand.Rand) Question {
	n := 3 + rng.Intn(2)
	f := randomCover(rng, n, 2+rng.Intn(4))
	count := len(f.Minterms())
	return Question{
		ID:   fmt.Sprintf("hw%d.q%d", week, q+1),
		Week: week,
		Prompt: fmt.Sprintf("How many satisfying assignments does the cover {%s} over %d variables have?",
			coverText(f), n),
		Check: func(ans string) bool {
			return strings.TrimSpace(ans) == fmt.Sprintf("%d", count)
		},
		Answer: fmt.Sprintf("%d", count),
	}
}

// GradeAssignment scores submitted answers (indexed like Questions).
func GradeAssignment(a Assignment, answers []string) (correct int) {
	for i, q := range a.Questions {
		if i < len(answers) && q.Check(answers[i]) {
			correct++
		}
	}
	return correct
}
