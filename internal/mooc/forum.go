package mooc

import (
	"math"
	"math/rand"
)

// Forum activity (Section 3): "participants crave interaction with
// course staff ... tending these forums was a significant effort,
// which my teaching assistants mainly handled". The model generates
// per-week thread volume proportional to active viewership, with a
// small staff (the acknowledgements name three TAs) answering.

// ForumParams calibrates the discussion model.
type ForumParams struct {
	Weeks           int
	Staff           int
	ThreadsPerK     float64 // threads per week per 1000 active participants
	RepliesPerThr   float64 // mean peer replies per thread
	StaffAnswerProb float64 // probability a thread gets a staff answer
}

// DefaultForumParams matches the narrative: 10 weeks, 3 TAs, busy
// boards early in the course.
func DefaultForumParams() ForumParams {
	return ForumParams{
		Weeks:           10,
		Staff:           3,
		ThreadsPerK:     25,
		RepliesPerThr:   2.5,
		StaffAnswerProb: 0.85,
	}
}

// ForumWeek is one week's activity.
type ForumWeek struct {
	Week         int
	Active       int // participants still watching this week
	Threads      int
	PeerReplies  int
	StaffReplies int
}

// ForumStats summarizes the offering.
type ForumStats struct {
	Weeks            []ForumWeek
	Threads          int
	PeerReplies      int
	StaffReplies     int
	StaffPerTA       float64
	AnsweredFraction float64
}

// SimulateForum derives forum traffic from a simulated cohort's
// viewership curve.
func (c *Cohort) SimulateForum(p ForumParams, seed int64) *ForumStats {
	rng := rand.New(rand.NewSource(seed))
	view := c.Viewership()
	stats := &ForumStats{}
	perWeek := len(view) / p.Weeks
	if perWeek < 1 {
		perWeek = 1
	}
	answered := 0
	for w := 0; w < p.Weeks; w++ {
		idx := w * perWeek
		if idx >= len(view) {
			idx = len(view) - 1
		}
		active := view[idx]
		mean := p.ThreadsPerK * float64(active) / 1000
		threads := poisson(rng, mean)
		peer := 0
		staff := 0
		for t := 0; t < threads; t++ {
			peer += poisson(rng, p.RepliesPerThr)
			if rng.Float64() < p.StaffAnswerProb {
				staff++
				answered++
			}
		}
		stats.Weeks = append(stats.Weeks, ForumWeek{
			Week: w + 1, Active: active, Threads: threads,
			PeerReplies: peer, StaffReplies: staff,
		})
		stats.Threads += threads
		stats.PeerReplies += peer
		stats.StaffReplies += staff
	}
	if p.Staff > 0 {
		stats.StaffPerTA = float64(stats.StaffReplies) / float64(p.Staff)
	}
	if stats.Threads > 0 {
		stats.AnsweredFraction = float64(answered) / float64(stats.Threads)
	}
	return stats
}

// poisson samples a Poisson variate by inversion (normal
// approximation for large means).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		v := int(mean + rng.NormFloat64()*math.Sqrt(mean))
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
