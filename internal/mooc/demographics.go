package mooc

import (
	"math/rand"
	"sort"
)

// Country participation (Figure 10): the paper reports worldwide
// participation on almost every continent, led by the US and India,
// with notable cohorts in Brazil and Egypt, reduced access in China
// (2013 firewall issues) and bandwidth-limited participation from the
// African interior. The shares below encode that narrative; the top
// bucket of the paper's choropleth is 10.01–29.69%.

type countryShare struct {
	Name  string
	Share float64
}

var countryTable = []countryShare{
	{"United States", 0.2200},
	{"India", 0.1800},
	{"United Kingdom", 0.0350},
	{"Germany", 0.0320},
	{"Brazil", 0.0310},
	{"Canada", 0.0290},
	{"Spain", 0.0260},
	{"Egypt", 0.0250},
	{"Russia", 0.0240},
	{"France", 0.0220},
	{"Greece", 0.0200},
	{"Italy", 0.0190},
	{"Pakistan", 0.0180},
	{"South Korea", 0.0170},
	{"Taiwan", 0.0160},
	{"Turkey", 0.0150},
	{"Mexico", 0.0140},
	{"Poland", 0.0130},
	{"Netherlands", 0.0120},
	{"Australia", 0.0115},
	{"Japan", 0.0110},
	{"Israel", 0.0105},
	{"Singapore", 0.0100},
	{"Vietnam", 0.0095},
	{"Ukraine", 0.0090},
	{"Romania", 0.0085},
	{"Portugal", 0.0080},
	{"Indonesia", 0.0075},
	{"Iran", 0.0070},
	{"Colombia", 0.0065},
	{"Argentina", 0.0060},
	{"Nigeria", 0.0055},
	{"South Africa", 0.0050},
	{"Bangladesh", 0.0045},
	{"Malaysia", 0.0040},
	{"China", 0.0040}, // 2013 access issues
	{"Morocco", 0.0035},
	{"Kenya", 0.0030},
	{"Chile", 0.0030},
	{"Sweden", 0.0030},
}

func sampleCountry(rng *rand.Rand) string {
	r := rng.Float64()
	acc := 0.0
	for _, cs := range countryTable {
		acc += cs.Share
		if r < acc {
			return cs.Name
		}
	}
	return "Other"
}

// Demographics is the Figure 10 + Section 4 summary.
type Demographics struct {
	ByCountry    map[string]int
	AvgAge       float64
	MinAge       int
	MaxAge       int
	FemaleShare  float64
	BSShare      float64
	MSPhDShare   float64
	TopCountries []string // sorted by participation, descending
}

// Demographics computes the cohort's demographic summary.
func (c *Cohort) Demographics() Demographics {
	d := Demographics{ByCountry: map[string]int{}, MinAge: 200}
	ageSum, female, bs, ms := 0, 0, 0, 0
	for _, p := range c.Participants {
		d.ByCountry[p.Country]++
		ageSum += p.Age
		if p.Age < d.MinAge {
			d.MinAge = p.Age
		}
		if p.Age > d.MaxAge {
			d.MaxAge = p.Age
		}
		if p.Female {
			female++
		}
		switch p.Degree {
		case "BS":
			bs++
		case "MS/PhD":
			ms++
		}
	}
	n := float64(len(c.Participants))
	d.AvgAge = float64(ageSum) / n
	d.FemaleShare = float64(female) / n
	d.BSShare = float64(bs) / n
	d.MSPhDShare = float64(ms) / n
	for name := range d.ByCountry {
		d.TopCountries = append(d.TopCountries, name)
	}
	sort.Slice(d.TopCountries, func(i, j int) bool {
		ci, cj := d.ByCountry[d.TopCountries[i]], d.ByCountry[d.TopCountries[j]]
		if ci != cj {
			return ci > cj
		}
		return d.TopCountries[i] < d.TopCountries[j]
	})
	return d
}
