package mooc

import (
	"fmt"
	"math/rand"
	"strings"

	"vlsicad/internal/bdd"
	"vlsicad/internal/sat"
)

// Engine-backed homework generators: Week-2 questions whose reference
// answers come from running the course's own BDD and SAT engines —
// the paper's point that rigorous machine-graded problems require the
// real tools behind the grader.

// bddNodeCountQuestion asks for the ROBDD size of a random expression
// under the natural variable order.
func bddNodeCountQuestion(week, q int, rng *rand.Rand) Question {
	n := 4 + rng.Intn(2)
	m := bdd.New(n)
	env := bdd.NewEnv(m)
	expr := randomExpr(rng, n, 3)
	f, err := bdd.Parse(env, expr)
	if err != nil {
		panic(fmt.Sprintf("mooc: generated bad expression %q: %v", expr, err))
	}
	count := m.NodeCount(f)
	return Question{
		ID:   fmt.Sprintf("hw%d.q%d", week, q+1),
		Week: week,
		Prompt: fmt.Sprintf(
			"Build the ROBDD of f = %s over variables %s (natural order). How many nodes does it have, counting both terminals?",
			expr, varList(n)),
		Check: func(ans string) bool {
			return strings.TrimSpace(ans) == fmt.Sprintf("%d", count)
		},
		Answer: fmt.Sprintf("%d", count),
	}
}

// satVerdictQuestion asks whether a small random CNF is satisfiable;
// the reference verdict comes from the CDCL solver.
func satVerdictQuestion(week, q int, rng *rand.Rand) Question {
	nvars := 4 + rng.Intn(3)
	nclauses := nvars*3 + rng.Intn(nvars*2)
	s := sat.New()
	for i := 0; i < nvars; i++ {
		s.NewVar()
	}
	var text []string
	for c := 0; c < nclauses; c++ {
		var lits []sat.Lit
		var toks []string
		for j := 0; j < 3; j++ {
			v := rng.Intn(nvars)
			if rng.Intn(2) == 0 {
				lits = append(lits, sat.PosLit(v))
				toks = append(toks, fmt.Sprintf("x%d", v+1))
			} else {
				lits = append(lits, sat.NegLit(v))
				toks = append(toks, fmt.Sprintf("x%d'", v+1))
			}
		}
		s.AddClause(lits...)
		text = append(text, "("+strings.Join(toks, "+")+")")
	}
	want := s.Solve() == sat.Sat
	wantStr := "unsat"
	if want {
		wantStr = "sat"
	}
	return Question{
		ID:   fmt.Sprintf("hw%d.q%d", week, q+1),
		Week: week,
		Prompt: fmt.Sprintf("Is the CNF %s satisfiable? (sat/unsat)",
			strings.Join(text, " ")),
		Check: func(ans string) bool {
			switch strings.ToLower(strings.TrimSpace(ans)) {
			case "sat", "satisfiable", "yes":
				return want
			case "unsat", "unsatisfiable", "no":
				return !want
			default:
				return false
			}
		},
		Answer: wantStr,
	}
}

// randomExpr builds a random kbdd-syntax expression with the given
// number of product terms.
func randomExpr(rng *rand.Rand, nvars, terms int) string {
	var parts []string
	for t := 0; t < terms; t++ {
		k := 2 + rng.Intn(2)
		var lits []string
		for j := 0; j < k; j++ {
			v := rng.Intn(nvars)
			l := fmt.Sprintf("x%d", v+1)
			if rng.Intn(2) == 0 {
				l = "~" + l
			}
			lits = append(lits, l)
		}
		parts = append(parts, strings.Join(lits, " & "))
	}
	return strings.Join(parts, " | ")
}

func varList(n int) string {
	var vs []string
	for i := 1; i <= n; i++ {
		vs = append(vs, fmt.Sprintf("x%d", i))
	}
	return strings.Join(vs, ", ")
}

// GenerateWeek2Homework builds a Week-2 assignment mixing BDD and SAT
// questions (individualized per user, like GenerateHomework).
func GenerateWeek2Homework(user string, questions int) Assignment {
	seed := int64(2_000_003)
	for _, r := range user {
		seed = seed*131 + int64(r)
	}
	rng := rand.New(rand.NewSource(seed))
	a := Assignment{Week: 2, User: user}
	for q := 0; q < questions; q++ {
		if q%2 == 0 {
			a.Questions = append(a.Questions, bddNodeCountQuestion(2, q, rng))
		} else {
			a.Questions = append(a.Questions, satVerdictQuestion(2, q, rng))
		}
	}
	return a
}
