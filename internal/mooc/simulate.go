package mooc

import (
	"math"
	"math/rand"
)

// The engagement model behind Figures 8 and 9. Stage-conversion
// parameters are calibrated from the paper's published funnel:
//
//	~17,500 registered → 7,191 watched a video → 1,377 did a homework
//	→ 369 tried a software assignment; 530 took the final; 386 earned
//	Statement of Accomplishment certificates.

// Params are the calibrated behavioral rates.
type Params struct {
	Registered    int
	PShowUp       float64 // watched at least one video
	PCompleter    float64 // of watchers: watches everything
	DropoutHazard float64 // per-lecture quit probability for the rest
	PHomework     float64 // of watchers: attempts a homework
	PSoftware     float64 // of homework-doers: tries a software project
	PFinal        float64 // of homework-doers: takes the final exam
	PCertificate  float64 // of final takers: passes (Accomplishment)
	PMasterCert   float64 // of software-doers who pass the final: Mastery
}

// PaperParams returns the calibration that regenerates the paper's
// Figure 8 funnel.
func PaperParams() Params {
	return Params{
		Registered:    17500,
		PShowUp:       7191.0 / 17500,
		PCompleter:    1950.0 / 7191, // "almost 2000 watched all the videos"
		DropoutHazard: 0.025,
		PHomework:     1377.0 / 7191,
		PSoftware:     369.0 / 1377,
		PFinal:        530.0 / 1377,
		PCertificate:  386.0 / 530,
		PMasterCert:   0.6,
	}
}

// Participant is one simulated registrant.
type Participant struct {
	ID            int
	Country       string
	Age           int
	Female        bool
	Degree        string // "none", "BS", "MS/PhD"
	ShowedUp      bool
	LecturesSeen  int // 0..NumLectures
	DidHomework   bool
	TriedSoftware bool
	TookFinal     bool
	Certificate   string // "", "Accomplishment", "Mastery"
}

// Funnel is the Figure 8 summary.
type Funnel struct {
	Registered    int
	WatchedVideo  int
	DidHomework   int
	TriedSoftware int
	TookFinal     int
	Certificates  int
}

// Cohort is a complete simulated offering.
type Cohort struct {
	Params       Params
	Participants []Participant
	NumLectures  int
}

// Simulate runs the engagement model over the registered population.
func Simulate(p Params, seed int64) *Cohort {
	rng := rand.New(rand.NewSource(seed))
	numLectures := len(Lectures())
	c := &Cohort{Params: p, NumLectures: numLectures}
	for i := 0; i < p.Registered; i++ {
		pt := Participant{ID: i}
		pt.Country = sampleCountry(rng)
		pt.Age = sampleAge(rng)
		pt.Female = rng.Float64() < 0.12
		pt.Degree = sampleDegree(rng)
		if rng.Float64() < p.PShowUp {
			pt.ShowedUp = true
			if rng.Float64() < p.PCompleter {
				pt.LecturesSeen = numLectures
			} else {
				// Dropout hazard per lecture, rising after the early
				// weeks (the paper's funnel: a plateau around 5,000
				// mid-course, very few non-completers at the end).
				seen := 1
				for seen < numLectures {
					h := p.DropoutHazard
					if seen >= 20 {
						h *= 3
					}
					if rng.Float64() <= h {
						break
					}
					seen++
				}
				pt.LecturesSeen = seen
			}
			if rng.Float64() < p.PHomework {
				pt.DidHomework = true
				if rng.Float64() < p.PSoftware {
					pt.TriedSoftware = true
				}
				if rng.Float64() < p.PFinal {
					pt.TookFinal = true
					if rng.Float64() < p.PCertificate {
						if pt.TriedSoftware && rng.Float64() < p.PMasterCert {
							pt.Certificate = "Mastery"
						} else {
							pt.Certificate = "Accomplishment"
						}
					}
				}
			}
		}
		c.Participants = append(c.Participants, pt)
	}
	return c
}

// Funnel computes the Figure 8 numbers from the cohort.
func (c *Cohort) Funnel() Funnel {
	f := Funnel{Registered: len(c.Participants)}
	for _, p := range c.Participants {
		if p.ShowedUp {
			f.WatchedVideo++
		}
		if p.DidHomework {
			f.DidHomework++
		}
		if p.TriedSoftware {
			f.TriedSoftware++
		}
		if p.TookFinal {
			f.TookFinal++
		}
		if p.Certificate != "" {
			f.Certificates++
		}
	}
	return f
}

// Viewership returns the Figure 9 series: viewers per lecture video.
func (c *Cohort) Viewership() []int {
	out := make([]int, c.NumLectures)
	for _, p := range c.Participants {
		for l := 0; l < p.LecturesSeen; l++ {
			out[l]++
		}
	}
	return out
}

// CertificateBreakdown counts completion outcomes by track.
func (c *Cohort) CertificateBreakdown() (accomplishment, mastery int) {
	for _, p := range c.Participants {
		switch p.Certificate {
		case "Accomplishment":
			accomplishment++
		case "Mastery":
			mastery++
		}
	}
	return
}

// CompetencyEstimate returns the paper's Section 5 claim: the number
// of participants who reached "a serious level of EDA competency" —
// here, those who watched everything or did software/the final. The
// paper brackets this between 500 and 2,000.
func (c *Cohort) CompetencyEstimate() (low, high int) {
	serious := 0
	deep := 0
	for _, p := range c.Participants {
		if p.TookFinal || p.TriedSoftware {
			serious++
		}
		if p.LecturesSeen == c.NumLectures {
			deep++
		}
	}
	if serious > deep {
		return deep, serious
	}
	return serious, deep
}

// sampleAge draws from a clipped normal centered at 30 (paper: avg
// 30, min 15, max 75).
func sampleAge(rng *rand.Rand) int {
	for {
		a := int(math.Round(30 + rng.NormFloat64()*9))
		if a >= 15 && a <= 75 {
			return a
		}
	}
}

func sampleDegree(rng *rand.Rand) string {
	r := rng.Float64()
	switch {
	case r < 0.30:
		return "BS"
	case r < 0.59:
		return "MS/PhD"
	default:
		return "none"
	}
}
