package obs

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// HTTP exporter: the live face of the telemetry plane. The paper's
// course was operated entirely from usage statistics of a running
// cloud service; this is the piece that makes the reproduction
// scrapeable the same way — Prometheus text on /metrics, the full
// JSON snapshot on /snapshot, liveness/readiness probes, and the
// sampled span ring on /debug/spans. stdlib net/http only.

// HandlerOpts configures NewHandler.
type HandlerOpts struct {
	// Ready, when non-nil, gates /readyz: a nil return serves 200, an
	// error serves 503 with the error text. Wire it to pool/breaker
	// state so a scheduler stops routing users at a sick portal.
	Ready func() error
	// Live, when non-nil, gates /healthz the same way (default:
	// always 200 — the process answering is the liveness signal).
	Live func() error
}

// NewHandler serves the observer's telemetry:
//
//	/metrics      Prometheus text format (deterministic ordering)
//	/snapshot     full JSON snapshot (metrics + spans + events)
//	/healthz      liveness probe
//	/readyz       readiness probe (HandlerOpts.Ready)
//	/debug/spans  retained spans as JSON Lines
func NewHandler(o *Observer, opts HandlerOpts) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Registry().Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		o.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/healthz", probe(opts.Live))
	mux.HandleFunc("/readyz", probe(opts.Ready))
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		o.Tracer().WriteJSONL(w)
	})
	return mux
}

// probe renders one health check as 200 "ok" / 503 with the cause.
func probe(check func() error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if check != nil {
			if err := check(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintf(w, "unavailable: %v\n", err)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	}
}

// Server is a running telemetry endpoint started by Serve.
type Server struct {
	lis     net.Listener
	srv     *http.Server
	done    chan struct{}
	closeMu sync.Mutex
	closed  bool
}

// Serve binds addr (":0" picks a free port; read it back with Addr)
// and serves the observer's telemetry until Close. It returns as soon
// as the listener is bound, so a caller can scrape immediately.
func Serve(addr string, o *Observer, opts HandlerOpts) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	s := &Server{
		lis:  lis,
		srv:  &http.Server{Handler: NewHandler(o, opts), ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		s.srv.Serve(lis) // returns ErrServerClosed on Close
	}()
	return s, nil
}

// Addr returns the bound address (host:port), useful with ":0".
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// URL returns the http base URL of the server.
func (s *Server) URL() string {
	if s == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Close stops the server and waits for the serve loop to exit. Safe
// to call more than once and on nil.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.srv.Close()
	<-s.done
	return err
}
