package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Observer bundles a Registry, Tracer and EventLog behind one clock —
// the handle instrumented code takes. A nil *Observer is a valid
// no-op sink, so callers never branch on "is telemetry attached".
type Observer struct {
	reg    *Registry
	tracer *Tracer
	events *EventLog
	clock  func() time.Time
}

// NewObserver builds a fresh observer around the given clock
// (time.Now when nil). Pass a FakeClock's Now for deterministic
// snapshots in tests.
func NewObserver(clock func() time.Time) *Observer {
	return NewObserverWith(Config{Clock: clock})
}

// Config sizes an observer for long-running service use. The zero
// value reproduces NewObserver(nil): wall clock, default ring
// capacities, no span sampling.
type Config struct {
	// Clock is the time source (time.Now when nil).
	Clock func() time.Time
	// SpanCapacity bounds the finished-span ring (DefaultSpanCapacity
	// when <= 0).
	SpanCapacity int
	// SpanSampleOneIn keeps 1-in-N root spans (<= 1 keeps all),
	// decided by a seeded hash — the long-run answer to unbounded
	// trace growth: bounded ring plus deterministic decimation.
	SpanSampleOneIn int64
	// SampleSeed seeds the sampling hash (so two runs with the same
	// seed and call sequence retain the same spans).
	SampleSeed uint64
	// EventCapacity bounds the event ring (DefaultEventCapacity when
	// <= 0).
	EventCapacity int
}

// NewObserverWith builds an observer from an explicit Config.
func NewObserverWith(cfg Config) *Observer {
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	tr := NewTracer(clock, cfg.SpanCapacity)
	tr.SetSampling(cfg.SpanSampleOneIn, cfg.SampleSeed)
	return &Observer{
		reg:    NewRegistry(),
		tracer: tr,
		events: NewEventLog(clock, cfg.EventCapacity),
		clock:  clock,
	}
}

var (
	defaultMu  sync.Mutex
	defaultObs *Observer
)

// Default returns the process-wide observer, creating it on first
// use. Instrumented packages fall back to it when no observer is
// injected, so `vlsicad -stats`-style reporting works with zero
// plumbing.
func Default() *Observer {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultObs == nil {
		defaultObs = NewObserver(nil)
	}
	return defaultObs
}

// Registry returns the metric registry (nil for a nil observer).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracer returns the span tracer (nil for a nil observer).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// Events returns the event log (nil for a nil observer).
func (o *Observer) Events() *EventLog {
	if o == nil {
		return nil
	}
	return o.events
}

// Now reads the observer's clock (wall time for a nil observer).
func (o *Observer) Now() time.Time {
	if o == nil {
		return time.Now()
	}
	return o.clock()
}

// Counter is shorthand for Registry().Counter.
func (o *Observer) Counter(name string) *Counter { return o.Registry().Counter(name) }

// Gauge is shorthand for Registry().Gauge.
func (o *Observer) Gauge(name string) *Gauge { return o.Registry().Gauge(name) }

// Histogram is shorthand for Registry().Histogram.
func (o *Observer) Histogram(name string, bounds ...float64) *Histogram {
	return o.Registry().Histogram(name, bounds...)
}

// CounterVec is shorthand for Registry().CounterVec.
func (o *Observer) CounterVec(name string, keys ...string) *CounterVec {
	return o.Registry().CounterVec(name, keys...)
}

// GaugeVec is shorthand for Registry().GaugeVec.
func (o *Observer) GaugeVec(name string, keys ...string) *GaugeVec {
	return o.Registry().GaugeVec(name, keys...)
}

// HistogramVec is shorthand for Registry().HistogramVec.
func (o *Observer) HistogramVec(name string, keys []string, bounds ...float64) *HistogramVec {
	return o.Registry().HistogramVec(name, keys, bounds...)
}

// StartSpan is shorthand for Tracer().Start.
func (o *Observer) StartSpan(name string) *Span { return o.Tracer().Start(name) }

// Emit is shorthand for Events().Emit.
func (o *Observer) Emit(kind string, fields map[string]string) { o.Events().Emit(kind, fields) }

// Snapshot is a complete, export-ready copy of the observer's state.
type Snapshot struct {
	Metrics RegistrySnapshot `json:"metrics"`
	Spans   []SpanRecord     `json:"spans,omitempty"`
	Events  []Event          `json:"events,omitempty"`
}

// Snapshot captures metrics, finished spans and retained events.
func (o *Observer) Snapshot() Snapshot {
	return Snapshot{
		Metrics: o.Registry().Snapshot(),
		Spans:   o.Tracer().Snapshot(),
		Events:  o.Events().Snapshot(),
	}
}

// WriteJSON emits the snapshot as indented JSON. Map keys are sorted
// by encoding/json, so the output is deterministic for a
// deterministic clock and operation sequence.
func (s Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteText renders the snapshot as a human-readable telemetry page:
// sorted metrics, then spans (indented per parent), then events.
func (s Snapshot) WriteText(w io.Writer) {
	s.Metrics.WriteText(w)
	if len(s.Spans) > 0 {
		fmt.Fprintf(w, "spans (%d finished):\n", len(s.Spans))
		depth := map[int64]int{}
		for _, sp := range s.Spans {
			d := 0
			if sp.Parent != 0 {
				d = depth[sp.Parent] + 1
			}
			depth[sp.ID] = d
			fmt.Fprintf(w, "  %*s%-28s %12.6fs", 2*d, "", sp.Name,
				sp.Duration.Seconds())
			if len(sp.Labels) > 0 {
				keys := make([]string, 0, len(sp.Labels))
				for k := range sp.Labels {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					fmt.Fprintf(w, " %s=%s", k, sp.Labels[k])
				}
			}
			fmt.Fprintln(w)
		}
	}
	if len(s.Events) > 0 {
		fmt.Fprintf(w, "events (%d retained):\n", len(s.Events))
		for _, e := range s.Events {
			fmt.Fprintf(w, "  #%d %s", e.Seq, e.Kind)
			keys := make([]string, 0, len(e.Fields))
			for k := range e.Fields {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(w, " %s=%s", k, e.Fields[k])
			}
			fmt.Fprintln(w)
		}
	}
}

// FakeClock is a deterministic clock for tests: every Now() call
// advances it by a fixed step, so durations and timestamps depend
// only on the call sequence.
type FakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

// NewFakeClock starts at start, advancing by step per Now() call.
func NewFakeClock(start time.Time, step time.Duration) *FakeClock {
	return &FakeClock{t: start, step: step}
}

// Now returns the current fake time and advances the clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.t
	c.t = c.t.Add(c.step)
	return now
}

// Advance moves the clock forward by d without a tick.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}
