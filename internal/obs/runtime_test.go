package obs

import (
	"testing"
	"time"
)

func TestCollectRuntime(t *testing.T) {
	o := NewObserver(nil)
	CollectRuntime(o)
	s := o.Registry().Snapshot()
	for _, g := range []string{
		"runtime_goroutines", "runtime_heap_alloc_bytes", "runtime_heap_objects",
		"runtime_gc_pause_total_seconds", "runtime_gc_runs_total", "runtime_next_gc_bytes",
	} {
		if _, ok := s.Gauges[g]; !ok {
			t.Errorf("gauge %s missing after CollectRuntime", g)
		}
	}
	if s.Gauges["runtime_goroutines"] < 1 {
		t.Errorf("runtime_goroutines = %g", s.Gauges["runtime_goroutines"])
	}
	if s.Gauges["runtime_heap_alloc_bytes"] <= 0 {
		t.Errorf("runtime_heap_alloc_bytes = %g", s.Gauges["runtime_heap_alloc_bytes"])
	}
	CollectRuntime(nil) // no-op, no panic
}

func TestRuntimeCollectorLifecycle(t *testing.T) {
	o := NewObserver(nil)
	c := StartRuntimeCollector(o, time.Hour) // one synchronous sample, then idle
	if v := o.Gauge("runtime_goroutines").Value(); v < 1 {
		t.Errorf("first sample not taken before Start returned: goroutines = %g", v)
	}
	c.Stop()
	c.Stop() // idempotent
	var nilC *RuntimeCollector
	nilC.Stop()
	if StartRuntimeCollector(nil, time.Second) != nil {
		t.Error("nil observer should return nil collector")
	}
}

func TestRuntimeCollectorTicks(t *testing.T) {
	o := NewObserver(nil)
	c := StartRuntimeCollector(o, time.Millisecond)
	defer c.Stop()
	// The GC-runs gauge only moves on a real GC; goroutines is always
	// refreshed — wait until the ticker has demonstrably fired by
	// zeroing a gauge and watching the collector restore it.
	deadline := time.After(2 * time.Second)
	for {
		o.Gauge("runtime_goroutines").Set(-1)
		time.Sleep(5 * time.Millisecond)
		if o.Gauge("runtime_goroutines").Value() >= 1 {
			return
		}
		select {
		case <-deadline:
			t.Fatal("ticker never refreshed runtime gauges")
		default:
		}
	}
}
