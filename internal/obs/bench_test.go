package obs

import (
	"testing"
	"time"
)

// The acceptance bar: instrumentation must add no measurable cost
// when telemetry is detached (nil observer), and only cheap atomics
// when attached.

func BenchmarkCounterInc(b *testing.B) {
	o := NewObserver(nil)
	c := o.Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	o := NewObserver(nil)
	h := o.Histogram("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}

func BenchmarkSpanStartEnd(b *testing.B) {
	o := NewObserver(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.StartSpan("bench").End()
	}
}

func BenchmarkRegistryLookup(b *testing.B) {
	o := NewObserver(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Counter("portal_jobs_total").Inc()
	}
}

// BenchmarkDetached measures the fully-instrumented call pattern
// against a nil observer — this is the "no exporter attached" cost.
func BenchmarkDetached(b *testing.B) {
	var o *Observer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := o.StartSpan("job")
		sp.SetLabel("tool", "kbdd")
		o.Counter("portal_jobs_total").Inc()
		o.Histogram("portal_job_seconds").ObserveDuration(time.Microsecond)
		sp.End()
	}
}
