package obs

import (
	"sort"
	"strings"
	"sync"
)

// Labeled metric families. A *Vec is a family of series sharing one
// name and one label-key set; With(values...) resolves (creating on
// first use) the child metric for one label-value combination. The
// portal uses these for per-tool/per-shard series instead of the
// name+":"+tool string-concat convention the flat registry forced.
//
// Hot-path contract: With on an existing child is lock-free sync.Map
// reads (no allocation for one-, two-, and three-label families —
// locked in by TestWithAllocFree), and the
// returned child is a plain *Counter/*Gauge/*Histogram — callers on
// genuinely hot paths (the pool worker loop) resolve children once at
// registration time and keep the handle, paying exactly the flat
// metric's atomic cost per event.
//
// Determinism contract: snapshots list every family's series sorted
// by their label rendering, and label keys inside each series render
// sorted by key, so two registries fed the same operations export
// byte-identical text regardless of creation interleaving.

// labelSep joins label values into a child key. 0x1f (ASCII unit
// separator) cannot appear in reasonable label values; even if it
// does, the worst case is two combinations sharing a child series.
const labelSep = "\x1f"

// childKey encodes a positional value list. Single-label families —
// the common case — use the value itself, allocation-free.
func childKey(values []string) string {
	if len(values) == 1 {
		return values[0]
	}
	return strings.Join(values, labelSep)
}

// vecCore is the shared name/keys/children plumbing of the three
// vector kinds.
type vecCore struct {
	name string
	keys []string // in caller (With-positional) order
	m    sync.Map // childKey -> child metric (snapshot source of truth)
	// idx2 is a read-side index for two-label families: first value ->
	// *sync.Map(second value -> child). The flat m stays authoritative
	// (snapshots and sortedChildKeys read only it); idx2 exists so a
	// two-label With hit needs no strings.Join — it is repaired from m
	// on every miss, so it can never disagree with it.
	idx2 sync.Map
	// idx3 extends the same scheme one level for three-label families
	// (first value -> second value -> third value -> child) — the
	// recovery counters' {kind}/{disposition} series ride this path.
	idx3 sync.Map
}

// load2 resolves a two-value combination through the nested index —
// the allocation-free hit path.
func (v *vecCore) load2(v1, v2 string) (any, bool) {
	inner, ok := v.idx2.Load(v1)
	if !ok {
		return nil, false
	}
	return inner.(*sync.Map).Load(v2)
}

// store2 indexes the canonical child (the one the flat map's
// LoadOrStore settled on) under its two values.
func (v *vecCore) store2(v1, v2 string, child any) {
	inner, ok := v.idx2.Load(v1)
	if !ok {
		inner, _ = v.idx2.LoadOrStore(v1, &sync.Map{})
	}
	inner.(*sync.Map).LoadOrStore(v2, child)
}

// load3 resolves a three-value combination through the nested index.
func (v *vecCore) load3(v1, v2, v3 string) (any, bool) {
	mid, ok := v.idx3.Load(v1)
	if !ok {
		return nil, false
	}
	inner, ok := mid.(*sync.Map).Load(v2)
	if !ok {
		return nil, false
	}
	return inner.(*sync.Map).Load(v3)
}

// store3 indexes the canonical child under its three values.
func (v *vecCore) store3(v1, v2, v3 string, child any) {
	mid, ok := v.idx3.Load(v1)
	if !ok {
		mid, _ = v.idx3.LoadOrStore(v1, &sync.Map{})
	}
	inner, ok := mid.(*sync.Map).Load(v2)
	if !ok {
		inner, _ = mid.(*sync.Map).LoadOrStore(v2, &sync.Map{})
	}
	inner.(*sync.Map).LoadOrStore(v3, child)
}

// checkArity panics when With is called with the wrong number of
// label values — a programming error, caught loudly like a wrong
// printf verb rather than silently mis-filed telemetry.
func (v *vecCore) checkArity(values []string) {
	if len(values) != len(v.keys) {
		panic("obs: " + v.name + ": wrong label cardinality")
	}
}

// labels reconstructs the key->value map of one encoded child.
func (v *vecCore) labels(key string) map[string]string {
	var values []string
	if len(v.keys) == 1 {
		values = []string{key}
	} else {
		values = strings.Split(key, labelSep)
	}
	m := make(map[string]string, len(v.keys))
	for i, k := range v.keys {
		if i < len(values) {
			m[k] = values[i]
		}
	}
	return m
}

// sortedChildKeys returns the encoded child keys in deterministic
// (sorted) order.
func (v *vecCore) sortedChildKeys() []string {
	var keys []string
	v.m.Range(func(k, _ any) bool {
		keys = append(keys, k.(string))
		return true
	})
	sort.Strings(keys)
	return keys
}

// CounterVec is a labeled counter family.
type CounterVec struct{ vecCore }

// With returns the child counter for the given label values (one per
// registered key, in order), creating it on first use. Safe on nil
// (returns a nil no-op counter); panics on wrong arity.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	v.checkArity(values)
	if len(values) == 2 {
		if c, ok := v.load2(values[0], values[1]); ok {
			return c.(*Counter)
		}
		c, _ := v.m.LoadOrStore(childKey(values), &Counter{})
		v.store2(values[0], values[1], c)
		return c.(*Counter)
	}
	if len(values) == 3 {
		if c, ok := v.load3(values[0], values[1], values[2]); ok {
			return c.(*Counter)
		}
		c, _ := v.m.LoadOrStore(childKey(values), &Counter{})
		v.store3(values[0], values[1], values[2], c)
		return c.(*Counter)
	}
	k := childKey(values)
	if c, ok := v.m.Load(k); ok {
		return c.(*Counter)
	}
	c, _ := v.m.LoadOrStore(k, &Counter{})
	return c.(*Counter)
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ vecCore }

// With returns the child gauge for the given label values. Safe on
// nil; panics on wrong arity.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	v.checkArity(values)
	if len(values) == 2 {
		if g, ok := v.load2(values[0], values[1]); ok {
			return g.(*Gauge)
		}
		g, _ := v.m.LoadOrStore(childKey(values), &Gauge{})
		v.store2(values[0], values[1], g)
		return g.(*Gauge)
	}
	if len(values) == 3 {
		if g, ok := v.load3(values[0], values[1], values[2]); ok {
			return g.(*Gauge)
		}
		g, _ := v.m.LoadOrStore(childKey(values), &Gauge{})
		v.store3(values[0], values[1], values[2], g)
		return g.(*Gauge)
	}
	k := childKey(values)
	if g, ok := v.m.Load(k); ok {
		return g.(*Gauge)
	}
	g, _ := v.m.LoadOrStore(k, &Gauge{})
	return g.(*Gauge)
}

// HistogramVec is a labeled histogram family; every child shares the
// family's bucket bounds.
type HistogramVec struct {
	vecCore
	bounds []float64
}

// With returns the child histogram for the given label values. Safe
// on nil; panics on wrong arity.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	v.checkArity(values)
	if len(values) == 2 {
		if h, ok := v.load2(values[0], values[1]); ok {
			return h.(*Histogram)
		}
		h, _ := v.m.LoadOrStore(childKey(values), newHistogram(v.bounds))
		v.store2(values[0], values[1], h)
		return h.(*Histogram)
	}
	if len(values) == 3 {
		if h, ok := v.load3(values[0], values[1], values[2]); ok {
			return h.(*Histogram)
		}
		h, _ := v.m.LoadOrStore(childKey(values), newHistogram(v.bounds))
		v.store3(values[0], values[1], values[2], h)
		return h.(*Histogram)
	}
	k := childKey(values)
	if h, ok := v.m.Load(k); ok {
		return h.(*Histogram)
	}
	h, _ := v.m.LoadOrStore(k, newHistogram(v.bounds))
	return h.(*Histogram)
}

// sameStrings reports element-wise equality.
func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sameBounds reports element-wise equality of bucket bounds.
func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CounterVec returns the named counter family with the given label
// keys, creating it on first use. Re-registering an existing family
// with different keys panics — the two call sites would silently
// shear one family into incompatible series otherwise.
func (r *Registry) CounterVec(name string, keys ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	v := r.counterVecs[name]
	r.mu.RUnlock()
	if v == nil {
		r.mu.Lock()
		if v = r.counterVecs[name]; v == nil {
			v = &CounterVec{vecCore{name: name, keys: append([]string(nil), keys...)}}
			r.counterVecs[name] = v
		}
		r.mu.Unlock()
	}
	if !sameStrings(v.keys, keys) {
		panic("obs: counter vec " + name + " re-registered with different label keys")
	}
	return v
}

// GaugeVec returns the named gauge family, creating it on first use.
// Re-registering with different keys panics.
func (r *Registry) GaugeVec(name string, keys ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	v := r.gaugeVecs[name]
	r.mu.RUnlock()
	if v == nil {
		r.mu.Lock()
		if v = r.gaugeVecs[name]; v == nil {
			v = &GaugeVec{vecCore{name: name, keys: append([]string(nil), keys...)}}
			r.gaugeVecs[name] = v
		}
		r.mu.Unlock()
	}
	if !sameStrings(v.keys, keys) {
		panic("obs: gauge vec " + name + " re-registered with different label keys")
	}
	return v
}

// HistogramVec returns the named histogram family with the given
// label keys and bucket bounds (DefaultLatencyBuckets when nil),
// creating it on first use. Re-registering with different keys or
// bounds panics.
func (r *Registry) HistogramVec(name string, keys []string, bounds ...float64) *HistogramVec {
	if r == nil {
		return nil
	}
	want := bounds
	if len(want) == 0 {
		want = DefaultLatencyBuckets()
	}
	want = append([]float64(nil), want...)
	sort.Float64s(want)
	r.mu.RLock()
	v := r.histVecs[name]
	r.mu.RUnlock()
	if v == nil {
		r.mu.Lock()
		if v = r.histVecs[name]; v == nil {
			v = &HistogramVec{
				vecCore: vecCore{name: name, keys: append([]string(nil), keys...)},
				bounds:  want,
			}
			r.histVecs[name] = v
		}
		r.mu.Unlock()
	}
	if !sameStrings(v.keys, keys) {
		panic("obs: histogram vec " + name + " re-registered with different label keys")
	}
	if len(bounds) > 0 && !sameBounds(v.bounds, want) {
		panic("obs: histogram vec " + name + " re-registered with different bucket bounds")
	}
	return v
}

// LabeledCounter is one series of a counter family in a snapshot.
type LabeledCounter struct {
	Labels map[string]string `json:"labels"`
	Value  int64             `json:"value"`
}

// LabeledGauge is one series of a gauge family in a snapshot.
type LabeledGauge struct {
	Labels map[string]string `json:"labels"`
	Value  float64           `json:"value"`
}

// LabeledHistogram is one series of a histogram family in a snapshot.
type LabeledHistogram struct {
	Labels map[string]string `json:"labels"`
	Hist   HistogramSnapshot `json:"hist"`
}

// CounterSeries looks one series of a counter family out of the
// snapshot by its labels (0, false when absent).
func (s RegistrySnapshot) CounterSeries(name string, labels map[string]string) (int64, bool) {
	want := LabelString(labels)
	for _, sr := range s.CounterVecs[name] {
		if LabelString(sr.Labels) == want {
			return sr.Value, true
		}
	}
	return 0, false
}

// GaugeSeries looks one series of a gauge family out of the snapshot
// by its labels (0, false when absent).
func (s RegistrySnapshot) GaugeSeries(name string, labels map[string]string) (float64, bool) {
	want := LabelString(labels)
	for _, sr := range s.GaugeVecs[name] {
		if LabelString(sr.Labels) == want {
			return sr.Value, true
		}
	}
	return 0, false
}

// HistogramSeries looks one series of a histogram family out of the
// snapshot by its labels (zero snapshot, false when absent).
func (s RegistrySnapshot) HistogramSeries(name string, labels map[string]string) (HistogramSnapshot, bool) {
	want := LabelString(labels)
	for _, sr := range s.HistogramVecs[name] {
		if LabelString(sr.Labels) == want {
			return sr.Hist, true
		}
	}
	return HistogramSnapshot{}, false
}

// LabelString renders a label map as `k1=v1,k2=v2` with keys sorted —
// the deterministic series identity used for ordering and text dumps.
func LabelString(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}
