package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func get(t *testing.T, h http.Handler, path string) (int, string, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String(), rec.Header().Get("Content-Type")
}

func TestHandlerMetrics(t *testing.T) {
	o := NewObserver(nil)
	o.Counter("hits_total").Add(7)
	o.CounterVec("tool_hits_total", "tool").With("kbdd").Inc()
	h := NewHandler(o, HandlerOpts{})

	code, body, ctype := get(t, h, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if want := "text/plain; version=0.0.4; charset=utf-8"; ctype != want {
		t.Errorf("content type = %q, want %q", ctype, want)
	}
	if !strings.Contains(body, "hits_total 7") ||
		!strings.Contains(body, `tool_hits_total{tool="kbdd"} 1`) {
		t.Errorf("/metrics body:\n%s", body)
	}
	if err := ValidateExposition(strings.NewReader(body)); err != nil {
		t.Errorf("/metrics page invalid: %v", err)
	}
}

func TestHandlerSnapshot(t *testing.T) {
	o := NewObserver(nil)
	o.Counter("hits_total").Add(3)
	sp := o.StartSpan("op")
	sp.End()
	code, body, ctype := get(t, NewHandler(o, HandlerOpts{}), "/snapshot")
	if code != 200 || ctype != "application/json" {
		t.Fatalf("/snapshot = %d %q", code, ctype)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	if snap.Metrics.Counters["hits_total"] != 3 || len(snap.Spans) != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestHandlerProbes(t *testing.T) {
	o := NewObserver(nil)
	var mu sync.Mutex
	var readyErr error
	setReady := func(err error) { mu.Lock(); readyErr = err; mu.Unlock() }
	h := NewHandler(o, HandlerOpts{Ready: func() error {
		mu.Lock()
		defer mu.Unlock()
		return readyErr
	}})

	if code, body, _ := get(t, h, "/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, _, _ := get(t, h, "/readyz"); code != 200 {
		t.Errorf("/readyz while ready = %d", code)
	}
	setReady(errors.New("all 3 tool breakers open"))
	code, body, _ := get(t, h, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("/readyz while sick = %d", code)
	}
	if !strings.Contains(body, "all 3 tool breakers open") {
		t.Errorf("/readyz body should carry the cause: %q", body)
	}
	setReady(nil)
	if code, _, _ := get(t, h, "/readyz"); code != 200 {
		t.Errorf("/readyz after recovery = %d", code)
	}
}

func TestHandlerDebugSpans(t *testing.T) {
	o := NewObserver(NewFakeClock(time.Unix(1700000000, 0).UTC(), time.Millisecond).Now)
	root := o.StartSpan("flow")
	child := root.StartChild("flow.route")
	child.End()
	root.End()
	code, body, _ := get(t, NewHandler(o, HandlerOpts{}), "/debug/spans")
	if code != 200 {
		t.Fatalf("/debug/spans = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 JSONL lines, got %d:\n%s", len(lines), body)
	}
	// JSONL is in ID (start) order: root first, then the child.
	var recRoot, recChild SpanRecord
	if err := json.Unmarshal([]byte(lines[0]), &recRoot); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &recChild); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if recRoot.Name != "flow" || recRoot.Parent != 0 {
		t.Errorf("first span = %+v, want the flow root", recRoot)
	}
	if recChild.Name != "flow.route" || recChild.Parent != recRoot.ID {
		t.Errorf("second span = %+v, want flow.route parented on %d", recChild, recRoot.ID)
	}
}

func TestServeLifecycle(t *testing.T) {
	o := NewObserver(nil)
	o.Counter("alive_total").Inc()
	srv, err := Serve("127.0.0.1:0", o, HandlerOpts{})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "alive_total 1") {
		t.Errorf("served page:\n%s", body)
	}
	if err := srv.Close(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		t.Errorf("close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if _, err := http.Get(srv.URL() + "/metrics"); err == nil {
		t.Error("server still answering after Close")
	}
	var nilSrv *Server
	if nilSrv.Close() != nil || nilSrv.Addr() != "" {
		t.Error("nil server should be inert")
	}
}

// TestConcurrentScrape runs live HTTP scrapes while goroutines create
// series and observe into them — the race-mode guarantee that a scrape
// never tears and always serves a parseable page.
func TestConcurrentScrape(t *testing.T) {
	o := NewObserver(nil)
	srv, err := Serve("127.0.0.1:0", o, HandlerOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			jobs := o.CounterVec("scrape_jobs_total", "tool")
			lat := o.HistogramVec("scrape_seconds", []string{"tool"}, 0.001, 0.1, 1)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tool := fmt.Sprintf("tool%d", (w*7+i)%5)
				jobs.With(tool).Inc()
				lat.With(tool).Observe(float64(i%10) * 0.01)
				sp := o.StartSpan("job")
				sp.End()
			}
		}(w)
	}
	for i := 0; i < 25; i++ {
		resp, err := http.Get(srv.URL() + "/metrics")
		if err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("scrape %d: status %d", i, resp.StatusCode)
		}
		if err := ValidateExposition(bytes.NewReader(body)); err != nil {
			t.Fatalf("scrape %d malformed: %v\n%s", i, err, body)
		}
	}
	close(stop)
	wg.Wait()
}
