package obs

import "testing"

// The tentpole's hot-path criterion: incrementing a labeled counter
// through With must stay within 3x of a flat Counter.Add (see
// BenchmarkCounterInc in bench_test.go); the cached-child pattern the
// pool uses must match the flat cost exactly.

func BenchmarkCounterVecWithInc(b *testing.B) {
	v := NewRegistry().CounterVec("bench_jobs_total", "tool")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.With("kbdd").Inc()
	}
}

func BenchmarkCounterVecCachedChildInc(b *testing.B) {
	c := NewRegistry().CounterVec("bench_jobs_total", "tool").With("kbdd")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterVecWithIncTwoLabels(b *testing.B) {
	v := NewRegistry().CounterVec("bench_shed_total", "tool", "reason")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.With("kbdd", "queue").Inc()
	}
}

func BenchmarkHistogramVecWithObserve(b *testing.B) {
	v := NewRegistry().HistogramVec("bench_seconds", []string{"tool"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.With("kbdd").Observe(0.003)
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	s := goldenRegistry().Registry().Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.WritePrometheus(discard{})
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
