package obs

import "testing"

// The tentpole's hot-path criterion: incrementing a labeled counter
// through With must stay within 3x of a flat Counter.Add (see
// BenchmarkCounterInc in bench_test.go); the cached-child pattern the
// pool uses must match the flat cost exactly.

func BenchmarkCounterVecWithInc(b *testing.B) {
	v := NewRegistry().CounterVec("bench_jobs_total", "tool")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.With("kbdd").Inc()
	}
}

func BenchmarkCounterVecCachedChildInc(b *testing.B) {
	c := NewRegistry().CounterVec("bench_jobs_total", "tool").With("kbdd")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterVecWithIncTwoLabels(b *testing.B) {
	v := NewRegistry().CounterVec("bench_shed_total", "tool", "reason")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.With("kbdd", "queue").Inc()
	}
}

func BenchmarkCounterVecWithIncThreeLabels(b *testing.B) {
	v := NewRegistry().CounterVec("bench_replay_total", "tool", "user", "reason")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.With("kbdd", "alice", "queue").Inc()
	}
}

// TestWithAllocFree locks the hot-path contract as a hard test, not
// just a benchmark number: resolving an existing child through With
// must not allocate for one-, two-, and three-label families of any
// kind. A regression here reappears in every pool-worker loop that
// doesn't cache its child handle.
func TestWithAllocFree(t *testing.T) {
	r := NewRegistry()
	cv1 := r.CounterVec("alloc_c1_total", "tool")
	cv2 := r.CounterVec("alloc_c2_total", "tool", "reason")
	gv2 := r.GaugeVec("alloc_g2", "tool", "reason")
	hv2 := r.HistogramVec("alloc_h2_seconds", []string{"tool", "reason"})
	cv3 := r.CounterVec("alloc_c3_total", "tool", "user", "reason")
	gv3 := r.GaugeVec("alloc_g3", "tool", "user", "reason")
	hv3 := r.HistogramVec("alloc_h3_seconds", []string{"tool", "user", "reason"})
	// Create the children outside the measured region.
	cv1.With("kbdd").Inc()
	cv2.With("kbdd", "queue").Inc()
	gv2.With("kbdd", "queue").Set(1)
	hv2.With("kbdd", "queue").Observe(0.001)
	cv3.With("kbdd", "alice", "queue").Inc()
	gv3.With("kbdd", "alice", "queue").Set(1)
	hv3.With("kbdd", "alice", "queue").Observe(0.001)
	cases := []struct {
		name string
		fn   func()
	}{
		{"CounterVec/1", func() { cv1.With("kbdd").Inc() }},
		{"CounterVec/2", func() { cv2.With("kbdd", "queue").Inc() }},
		{"GaugeVec/2", func() { gv2.With("kbdd", "queue").Set(2) }},
		{"HistogramVec/2", func() { hv2.With("kbdd", "queue").Observe(0.002) }},
		{"CounterVec/3", func() { cv3.With("kbdd", "alice", "queue").Inc() }},
		{"GaugeVec/3", func() { gv3.With("kbdd", "alice", "queue").Set(2) }},
		{"HistogramVec/3", func() { hv3.With("kbdd", "alice", "queue").Observe(0.002) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(200, tc.fn); n != 0 {
			t.Errorf("%s: %v allocs/op on the existing-child path, want 0", tc.name, n)
		}
	}
}

func BenchmarkHistogramVecWithObserve(b *testing.B) {
	v := NewRegistry().HistogramVec("bench_seconds", []string{"tool"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.With("kbdd").Observe(0.003)
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	s := goldenRegistry().Registry().Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.WritePrometheus(discard{})
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
