package obs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("jobs") != c {
		t.Error("same name should return the same counter")
	}

	g := r.Gauge("inflight")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}

	h := r.Histogram("lat", 0.1, 1, 10)
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if s.Sum != 56.05 {
		t.Errorf("sum = %g, want 56.05", s.Sum)
	}
	wantCounts := []int64{1, 2, 1, 1}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if got := s.Mean(); got < 11.2 || got > 11.22 {
		t.Errorf("mean = %g", got)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edges", 1, 2)
	h.Observe(1) // on the bound: counts in bucket <=1
	h.Observe(2.0001)
	s := r.Snapshot().Histograms["edges"]
	if s.Counts[0] != 1 || s.Counts[2] != 1 {
		t.Errorf("counts = %v", s.Counts)
	}
}

func TestNilSafety(t *testing.T) {
	var o *Observer
	o.Counter("x").Inc()
	o.Gauge("y").Add(1)
	o.Histogram("z").Observe(1)
	o.Emit("e", map[string]string{"a": "b"})
	sp := o.StartSpan("root")
	sp.SetLabel("k", "v")
	child := sp.StartChild("c")
	child.End()
	if d := sp.End(); d != 0 {
		t.Errorf("nil span duration = %v", d)
	}
	snap := o.Snapshot()
	if len(snap.Spans) != 0 || len(snap.Events) != 0 {
		t.Error("nil observer snapshot should be empty")
	}
	var buf bytes.Buffer
	snap.WriteText(&buf)
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestSpansDeterministicUnderFakeClock(t *testing.T) {
	run := func() []byte {
		clk := NewFakeClock(time.Unix(1700000000, 0).UTC(), time.Millisecond)
		o := NewObserver(clk.Now)
		root := o.StartSpan("flow")
		root.SetLabel("model", "adder")
		for _, st := range []string{"synth", "map", "place"} {
			sp := root.StartChild("flow." + st)
			o.Histogram("stage_seconds").ObserveDuration(sp.End())
		}
		root.End()
		o.Counter("runs").Inc()
		var buf bytes.Buffer
		if err := o.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Errorf("snapshots differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}

	clk := NewFakeClock(time.Unix(0, 0).UTC(), time.Second)
	o := NewObserver(clk.Now)
	root := o.StartSpan("r") // tick 0 (start)
	ch := root.StartChild("c")
	if d := ch.End(); d != time.Second {
		t.Errorf("child duration = %v, want 1s", d)
	}
	root.End()
	spans := o.Tracer().Snapshot()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Name != "r" || spans[1].Parent != spans[0].ID {
		t.Errorf("span tree wrong: %+v", spans)
	}
	if d := root.End(); d != spans[0].Duration {
		t.Error("double End should return the recorded duration")
	}
	if len(o.Tracer().Snapshot()) != 2 {
		t.Error("double End must not record twice")
	}
}

func TestSpanRingBounded(t *testing.T) {
	tr := NewTracer(nil, 4)
	for i := 0; i < 10; i++ {
		tr.Start(fmt.Sprintf("s%d", i)).End()
	}
	got := tr.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d spans, want 4", len(got))
	}
	if got[0].Name != "s6" || got[3].Name != "s9" {
		t.Errorf("ring kept wrong spans: %v", got)
	}
	if tr.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", tr.Dropped())
	}
}

func TestEventLogBounded(t *testing.T) {
	l := NewEventLog(nil, 3)
	for i := 0; i < 5; i++ {
		l.Emit("e", map[string]string{"i": fmt.Sprint(i)})
	}
	got := l.Snapshot()
	if len(got) != 3 {
		t.Fatalf("retained %d events, want 3", len(got))
	}
	if got[0].Fields["i"] != "2" || got[2].Fields["i"] != "4" {
		t.Errorf("wrong events retained: %v", got)
	}
	if got[0].Seq != 3 {
		t.Errorf("seq = %d, want 3", got[0].Seq)
	}
	if l.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", l.Dropped())
	}
}

// TestRegistryConcurrent hammers every metric kind plus Snapshot from
// many goroutines; run with -race.
func TestRegistryConcurrent(t *testing.T) {
	o := NewObserver(nil)
	const workers = 16
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("m%d", w%4)
			for i := 0; i < iters; i++ {
				o.Counter(name).Inc()
				o.Gauge(name).Add(1)
				o.Histogram(name).Observe(float64(i))
				sp := o.StartSpan(name)
				sp.SetLabel("w", fmt.Sprint(w))
				sp.End()
				o.Emit(name, nil)
				if i%100 == 0 {
					_ = o.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	snap := o.Snapshot()
	var total int64
	for _, v := range snap.Metrics.Counters {
		total += v
	}
	if total != workers*iters {
		t.Errorf("counter total = %d, want %d", total, workers*iters)
	}
	for name, h := range snap.Metrics.Histograms {
		var bucketSum int64
		for _, c := range h.Counts {
			bucketSum += c
		}
		if bucketSum != h.Count {
			t.Errorf("%s: bucket sum %d != count %d", name, bucketSum, h.Count)
		}
	}
}

func TestDefaultObserverSingleton(t *testing.T) {
	if Default() != Default() {
		t.Error("Default must return the same observer")
	}
}
