package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format (version 0.0.4) exposition of a registry
// snapshot. The output is deterministic: families are sorted by
// exposition name, series within a family by their label rendering,
// and floats render with strconv's shortest round-trip form — two
// snapshots of the same state are byte-identical.

// promName sanitizes a metric name to the exposition charset
// [a-zA-Z_:][a-zA-Z0-9_:]*. The repo's legacy flat names use ':' as a
// label-ish separator, which Prometheus happens to allow; anything
// else invalid (e.g. the '-' in "pool_breaker_half-open") maps to '_'.
func promName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabelName sanitizes a label key to [a-zA-Z_][a-zA-Z0-9_]*.
func promLabelName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscape escapes a label value per the text format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// promFloat renders a float in shortest round-trip form.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabels renders a sorted {k="v",...} block ("" when empty).
// extraK/extraV, when non-empty, is appended last (the histogram
// "le" label).
func promLabels(labels map[string]string, extraK, extraV string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, promLabelName(k)+`="`+promEscape(labels[k])+`"`)
	}
	if extraK != "" {
		parts = append(parts, extraK+`="`+promEscape(extraV)+`"`)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// promFamily is one exposition family being assembled: flat metrics
// contribute a single unlabeled series, vec families one series per
// child; same-name same-type families merge.
type promFamily struct {
	name  string
	typ   string // "counter" | "gauge" | "histogram"
	lines []string
}

// writeHistSeries appends one histogram series (cumulative buckets,
// +Inf, _sum, _count) to the family.
func (f *promFamily) writeHistSeries(labels map[string]string, h HistogramSnapshot) {
	cum := int64(0)
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		f.lines = append(f.lines, f.name+"_bucket"+
			promLabels(labels, "le", promFloat(bound))+" "+
			strconv.FormatInt(cum, 10))
	}
	f.lines = append(f.lines, f.name+"_bucket"+
		promLabels(labels, "le", "+Inf")+" "+
		strconv.FormatInt(h.Count, 10))
	f.lines = append(f.lines, f.name+"_sum"+promLabels(labels, "", "")+
		" "+promFloat(h.Sum))
	f.lines = append(f.lines, f.name+"_count"+promLabels(labels, "", "")+
		" "+strconv.FormatInt(h.Count, 10))
}

// sortedKeys returns m's keys sorted — the deterministic iteration
// order every exposition pass uses.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders the snapshot in Prometheus text format with
// deterministic ordering: families sorted by exposition name, flat
// series before labeled ones, labeled series in snapshot (label-
// sorted) order, histogram buckets in ascending le order.
func (s RegistrySnapshot) WritePrometheus(w io.Writer) error {
	fams := map[string]*promFamily{}
	var family func(name, typ string) *promFamily
	family = func(name, typ string) *promFamily {
		ename := promName(name)
		f := fams[ename]
		if f == nil {
			f = &promFamily{name: ename, typ: typ}
			fams[ename] = f
		}
		if f.typ != typ {
			// Two differently-typed metrics sanitized to one name —
			// rename the newcomer rather than emit a malformed page.
			return family(name+"_"+typ, typ)
		}
		return f
	}
	// Append in sorted original-name order, flat metrics before vec
	// series, so each family's line order is deterministic even when
	// sanitization merges names.
	for _, name := range sortedKeys(s.Counters) {
		f := family(name, "counter")
		f.lines = append(f.lines, f.name+" "+strconv.FormatInt(s.Counters[name], 10))
	}
	for _, name := range sortedKeys(s.CounterVecs) {
		f := family(name, "counter")
		for _, sr := range s.CounterVecs[name] {
			f.lines = append(f.lines, f.name+promLabels(sr.Labels, "", "")+
				" "+strconv.FormatInt(sr.Value, 10))
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		f := family(name, "gauge")
		f.lines = append(f.lines, f.name+" "+promFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.GaugeVecs) {
		f := family(name, "gauge")
		for _, sr := range s.GaugeVecs[name] {
			f.lines = append(f.lines, f.name+promLabels(sr.Labels, "", "")+
				" "+promFloat(sr.Value))
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		family(name, "histogram").writeHistSeries(nil, s.Histograms[name])
	}
	for _, name := range sortedKeys(s.HistogramVecs) {
		f := family(name, "histogram")
		for _, sr := range s.HistogramVecs[name] {
			f.writeHistSeries(sr.Labels, sr.Hist)
		}
	}

	bw := bufio.NewWriter(w)
	for _, n := range sortedKeys(fams) {
		f := fams[n]
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, line := range f.lines {
			bw.WriteString(line)
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// ValidateExposition reads a Prometheus text page and returns an
// error on the first malformed line — the checker the CI scrape drill
// (and the chaos scrape tests) run against a live /metrics endpoint.
// It verifies line shape (comments, `name{labels} value`, `name
// value`), name/label charsets, numeric values, and that every sample
// belongs to a `# TYPE`-declared family.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	typed := map[string]string{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.Fields(line)
			if len(parts) >= 4 && parts[1] == "TYPE" {
				if promName(parts[2]) != parts[2] {
					return fmt.Errorf("line %d: bad family name %q", lineNo, parts[2])
				}
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: bad family type %q", lineNo, parts[3])
				}
				typed[parts[2]] = parts[3]
			}
			continue
		}
		name, rest := line, ""
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name, rest = line[:i], line[i:]
		}
		if name == "" || promName(name) != name {
			return fmt.Errorf("line %d: bad metric name %q", lineNo, name)
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if t, ok := typed[strings.TrimSuffix(name, suffix)]; ok && t == "histogram" {
				base = strings.TrimSuffix(name, suffix)
				break
			}
		}
		if _, ok := typed[base]; !ok {
			return fmt.Errorf("line %d: sample %q has no # TYPE declaration", lineNo, name)
		}
		if strings.HasPrefix(rest, "{") {
			end := strings.Index(rest, "}")
			if end < 0 {
				return fmt.Errorf("line %d: unterminated label block", lineNo)
			}
			for _, pair := range splitLabelPairs(rest[1:end]) {
				eq := strings.Index(pair, "=")
				if eq <= 0 {
					return fmt.Errorf("line %d: bad label pair %q", lineNo, pair)
				}
				k, v := pair[:eq], pair[eq+1:]
				if promLabelName(k) != k {
					return fmt.Errorf("line %d: bad label name %q", lineNo, k)
				}
				if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					return fmt.Errorf("line %d: unquoted label value %q", lineNo, v)
				}
			}
			rest = rest[end+1:]
		}
		val := strings.TrimSpace(rest)
		if val == "" {
			return fmt.Errorf("line %d: missing sample value", lineNo)
		}
		if _, err := strconv.ParseFloat(strings.Fields(val)[0], 64); err != nil {
			return fmt.Errorf("line %d: bad sample value %q", lineNo, val)
		}
	}
	return sc.Err()
}

// splitLabelPairs splits `k1="v1",k2="v2"` on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	inQuote := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
