package obs

import (
	"sync"
	"time"
)

// Event is one structured telemetry record — a discrete operational
// fact (job abandoned, DRC violations found) rather than a metric
// sample.
type Event struct {
	Seq    int64             `json:"seq"`
	Time   time.Time         `json:"time"`
	Kind   string            `json:"kind"`
	Fields map[string]string `json:"fields,omitempty"`
}

// DefaultEventCapacity bounds the ring of a new EventLog.
const DefaultEventCapacity = 1024

// EventLog is a bounded ring of events; when full, the oldest are
// dropped (and counted). Safe for concurrent use and on nil.
type EventLog struct {
	mu      sync.Mutex
	clock   func() time.Time
	buf     []Event
	cap     int
	next    int
	wrapped bool
	seq     int64
	dropped int64
}

// NewEventLog returns an event log using the given clock (time.Now
// when nil) keeping at most capacity events (DefaultEventCapacity
// when <= 0).
func NewEventLog(clock func() time.Time, capacity int) *EventLog {
	if clock == nil {
		clock = time.Now
	}
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &EventLog{clock: clock, cap: capacity}
}

// Emit appends an event. The fields map is copied. Safe on nil.
func (l *EventLog) Emit(kind string, fields map[string]string) {
	if l == nil {
		return
	}
	var cp map[string]string
	if len(fields) > 0 {
		cp = make(map[string]string, len(fields))
		for k, v := range fields {
			cp[k] = v
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e := Event{Seq: l.seq, Time: l.clock(), Kind: kind, Fields: cp}
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.next] = e
		l.wrapped = true
	}
	l.next = (l.next + 1) % l.cap
	if l.wrapped {
		l.dropped++
	}
}

// Snapshot returns the retained events, oldest first.
func (l *EventLog) Snapshot() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.buf))
	if l.wrapped {
		out = append(out, l.buf[l.next:]...)
		out = append(out, l.buf[:l.next]...)
	} else {
		out = append(out, l.buf...)
	}
	return out
}

// Dropped reports how many events fell off the ring.
func (l *EventLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}
