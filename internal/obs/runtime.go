package obs

import (
	"runtime"
	"sync"
	"time"
)

// RuntimeCollector polls Go runtime health — goroutine count, heap
// size, GC totals — into gauges on a stoppable ticker, so a scraped
// /metrics page shows whether the process itself (not just the
// portal) is drowning. Gauges it maintains:
//
//	runtime_goroutines            current goroutine count
//	runtime_heap_alloc_bytes      live heap bytes
//	runtime_heap_objects          live heap objects
//	runtime_gc_pause_total_seconds cumulative stop-the-world pause
//	runtime_gc_runs_total         completed GC cycles
//	runtime_next_gc_bytes         heap size that triggers the next GC
type RuntimeCollector struct {
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// DefaultRuntimeInterval is the poll period when none is given.
const DefaultRuntimeInterval = 5 * time.Second

// StartRuntimeCollector samples the runtime into o's gauges every
// interval (DefaultRuntimeInterval when <= 0) until Stop. One sample
// is taken synchronously before returning, so the gauges are live
// from the first scrape. Returns nil when o is nil.
func StartRuntimeCollector(o *Observer, interval time.Duration) *RuntimeCollector {
	if o == nil {
		return nil
	}
	if interval <= 0 {
		interval = DefaultRuntimeInterval
	}
	c := &RuntimeCollector{stop: make(chan struct{}), done: make(chan struct{})}
	CollectRuntime(o)
	go func() {
		defer close(c.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				CollectRuntime(o)
			case <-c.stop:
				return
			}
		}
	}()
	return c
}

// Stop halts the ticker and waits for the poll goroutine to exit.
// Safe on nil and called more than once.
func (c *RuntimeCollector) Stop() {
	if c == nil {
		return
	}
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

// CollectRuntime takes one runtime sample into o's gauges — the
// collector's tick body, callable directly in tests or one-shot
// report paths. Safe on a nil observer.
func CollectRuntime(o *Observer) {
	if o == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	o.Gauge("runtime_goroutines").Set(float64(runtime.NumGoroutine()))
	o.Gauge("runtime_heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	o.Gauge("runtime_heap_objects").Set(float64(ms.HeapObjects))
	o.Gauge("runtime_gc_pause_total_seconds").Set(float64(ms.PauseTotalNs) / 1e9)
	o.Gauge("runtime_gc_runs_total").Set(float64(ms.NumGC))
	o.Gauge("runtime_next_gc_bytes").Set(float64(ms.NextGC))
}
