package obs

import (
	"fmt"
	"sync"
	"testing"
)

// mustPanic runs fn and fails the test unless it panics.
func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic, got none", what)
		}
	}()
	fn()
}

func TestVecBasics(t *testing.T) {
	r := NewRegistry()
	jobs := r.CounterVec("jobs_total", "tool")
	jobs.With("kbdd").Add(3)
	jobs.With("espresso").Inc()
	jobs.With("kbdd").Inc()
	if v := jobs.With("kbdd").Value(); v != 4 {
		t.Errorf("jobs{kbdd} = %d, want 4", v)
	}

	depth := r.GaugeVec("queue_depth", "shard")
	depth.With("0").Set(7)
	depth.With("0").Add(-2)
	if v := depth.With("0").Value(); v != 5 {
		t.Errorf("depth{0} = %g, want 5", v)
	}

	lat := r.HistogramVec("job_seconds", []string{"tool"}, 0.1, 1, 10)
	lat.With("kbdd").Observe(0.05)
	lat.With("kbdd").Observe(5)
	s := r.Snapshot()
	h, ok := s.HistogramSeries("job_seconds", map[string]string{"tool": "kbdd"})
	if !ok || h.Count != 2 {
		t.Errorf("job_seconds{kbdd} count = %d (present %v), want 2", h.Count, ok)
	}

	// With returns the same child every time — callers may cache it.
	if jobs.With("kbdd") != jobs.With("kbdd") {
		t.Error("With should return a stable child pointer")
	}
}

func TestVecMultiLabel(t *testing.T) {
	r := NewRegistry()
	shed := r.CounterVec("shed_total", "tool", "reason")
	shed.With("kbdd", "queue").Add(2)
	shed.With("kbdd", "breaker").Inc()
	shed.With("sis", "queue").Inc()
	s := r.Snapshot()
	if v, ok := s.CounterSeries("shed_total", map[string]string{"tool": "kbdd", "reason": "queue"}); !ok || v != 2 {
		t.Errorf("shed{kbdd,queue} = %d (present %v), want 2", v, ok)
	}
	if v, ok := s.CounterSeries("shed_total", map[string]string{"tool": "sis", "reason": "queue"}); !ok || v != 1 {
		t.Errorf("shed{sis,queue} = %d (present %v), want 1", v, ok)
	}
	if _, ok := s.CounterSeries("shed_total", map[string]string{"tool": "sis", "reason": "breaker"}); ok {
		t.Error("series that was never touched should be absent")
	}
}

func TestVecArityPanics(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("c", "tool")
	gv := r.GaugeVec("g", "tool", "shard")
	hv := r.HistogramVec("h", []string{"tool"})
	mustPanic(t, "counter too many", func() { cv.With("a", "b") })
	mustPanic(t, "counter too few", func() { cv.With() })
	mustPanic(t, "gauge too few", func() { gv.With("a") })
	mustPanic(t, "histogram too many", func() { hv.With("a", "b") })
}

func TestVecReRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("c", "tool")
	r.CounterVec("c", "tool") // same keys: fine
	mustPanic(t, "counter keys", func() { r.CounterVec("c", "shard") })
	mustPanic(t, "counter arity", func() { r.CounterVec("c", "tool", "shard") })

	r.GaugeVec("g", "tool")
	mustPanic(t, "gauge keys", func() { r.GaugeVec("g", "other") })

	r.HistogramVec("h", []string{"tool"}, 1, 2)
	r.HistogramVec("h", []string{"tool"}, 1, 2) // same: fine
	r.HistogramVec("h", []string{"tool"})       // no explicit bounds: accepts existing
	mustPanic(t, "hist keys", func() { r.HistogramVec("h", []string{"shard"}, 1, 2) })
	mustPanic(t, "hist bounds", func() { r.HistogramVec("h", []string{"tool"}, 1, 2, 3) })
}

// TestHistogramBoundsMismatchPanics: the flat Histogram used to
// silently hand back the existing instance when re-registered with
// different bucket bounds, filing observations into buckets the second
// caller never asked for. Now it panics.
func TestHistogramBoundsMismatchPanics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 0.1, 1, 10)
	h.Observe(0.5)
	if got := r.Histogram("lat", 0.1, 1, 10); got != h {
		t.Error("same bounds should return the same histogram")
	}
	if got := r.Histogram("lat"); got != h {
		t.Error("no explicit bounds should accept the registered histogram")
	}
	// Order-insensitive: bounds are sorted before comparison.
	if got := r.Histogram("lat", 10, 1, 0.1); got != h {
		t.Error("same bounds in different order should match")
	}
	mustPanic(t, "different bounds", func() { r.Histogram("lat", 0.5, 5) })
	mustPanic(t, "subset bounds", func() { r.Histogram("lat", 0.1, 1) })

	// Default-bucket histograms follow the same rule.
	r.Histogram("lat2")
	r.Histogram("lat2", DefaultLatencyBuckets()...)
	mustPanic(t, "default vs explicit", func() { r.Histogram("lat2", 1, 2) })
}

func TestVecNilSafety(t *testing.T) {
	var r *Registry
	// Nil registry: families and children are nil no-ops.
	r.CounterVec("c", "tool").With("x").Inc()
	r.GaugeVec("g", "tool").With("x").Set(1)
	r.HistogramVec("h", []string{"tool"}).With("x").Observe(1)
	var cv *CounterVec
	var gv *GaugeVec
	var hv *HistogramVec
	cv.With("x").Inc()
	gv.With("x").Add(1)
	hv.With("x").ObserveDuration(0)
	var o *Observer
	o.CounterVec("c", "tool").With("x").Inc()
}

func TestSnapshotSeriesDeterministicOrder(t *testing.T) {
	// Two registries fed the same series in opposite creation order
	// must snapshot identically ordered slices.
	build := func(order []string) RegistrySnapshot {
		r := NewRegistry()
		v := r.CounterVec("jobs", "tool")
		for i, tool := range order {
			v.With(tool).Add(int64(i + 1))
		}
		v.With("espresso").Add(100) // equalize values
		v.With("kbdd").Add(100)
		v.With("sis").Add(100)
		s := r.Snapshot()
		for i := range s.CounterVecs["jobs"] {
			s.CounterVecs["jobs"][i].Value = 0 // compare order only
		}
		return s
	}
	a := build([]string{"kbdd", "espresso", "sis"})
	b := build([]string{"sis", "kbdd", "espresso"})
	as := fmt.Sprintf("%v", a.CounterVecs["jobs"])
	bs := fmt.Sprintf("%v", b.CounterVecs["jobs"])
	if as != bs {
		t.Errorf("series order depends on creation order:\n%s\n%s", as, bs)
	}
	want := []string{"espresso", "kbdd", "sis"}
	for i, sr := range a.CounterVecs["jobs"] {
		if sr.Labels["tool"] != want[i] {
			t.Errorf("series %d = %v, want tool=%s", i, sr.Labels, want[i])
		}
	}
}

func TestLabelString(t *testing.T) {
	if got := LabelString(map[string]string{"b": "2", "a": "1"}); got != "a=1,b=2" {
		t.Errorf("LabelString = %q", got)
	}
	if got := LabelString(nil); got != "" {
		t.Errorf("LabelString(nil) = %q", got)
	}
}

// TestVecConcurrent hammers one family from many goroutines while
// snapshots run — meaningful mainly under -race.
func TestVecConcurrent(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("c", "worker")
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := v.With(fmt.Sprintf("w%d", w%4))
			for i := 0; i < iters; i++ {
				child.Inc()
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	total := int64(0)
	for _, sr := range r.Snapshot().CounterVecs["c"] {
		total += sr.Value
	}
	if total != workers*iters {
		t.Errorf("total = %d, want %d", total, workers*iters)
	}
}
