package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestSpanSamplingDeterministic: the same seed and call sequence keeps
// the same spans; a different seed keeps a different (still 1-in-N
// sized) subset.
func TestSpanSamplingDeterministic(t *testing.T) {
	run := func(seed uint64) []int64 {
		tr := NewTracer(NewFakeClock(time.Unix(1700000000, 0).UTC(), time.Millisecond).Now, 0)
		tr.SetSampling(4, seed)
		for i := 0; i < 400; i++ {
			tr.Start("op").End()
		}
		var ids []int64
		for _, rec := range tr.Snapshot() {
			ids = append(ids, rec.ID)
		}
		return ids
	}
	a, b := run(17), run(17)
	if len(a) == 0 {
		t.Fatal("sampler kept nothing out of 400 spans at 1-in-4")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed kept %d vs %d spans", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed kept different spans at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// ~100 expected; the hash should land within a loose band.
	if len(a) < 50 || len(a) > 200 {
		t.Errorf("1-in-4 sampling kept %d of 400", len(a))
	}
	c := run(99)
	same := len(c) == len(a)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds kept the identical span subset")
	}
}

func TestSpanSamplingChildrenFollowRoot(t *testing.T) {
	tr := NewTracer(nil, 0)
	tr.SetSampling(3, 42)
	type trace struct{ root, child, grand int64 }
	var kept []trace
	total := 0
	for i := 0; i < 60; i++ {
		root := tr.Start("root")
		child := root.StartChild("child")
		grand := child.StartChild("grand")
		grand.End()
		child.End()
		root.End()
		total += 3
	}
	recs := tr.Snapshot()
	byID := map[int64]SpanRecord{}
	for _, r := range recs {
		byID[r.ID] = r
	}
	// Every retained span's ancestors must also be retained: traces are
	// whole or absent, never torn.
	for _, r := range recs {
		if r.Parent != 0 {
			if _, ok := byID[r.Parent]; !ok {
				t.Errorf("span %d (%s) retained without its parent %d", r.ID, r.Name, r.Parent)
			}
		}
	}
	if len(recs)%3 != 0 {
		t.Errorf("retained %d spans — not whole traces of 3", len(recs))
	}
	if tr.SampledOut()+int64(len(recs)) != int64(total) {
		t.Errorf("SampledOut %d + kept %d != finished %d", tr.SampledOut(), len(recs), total)
	}
	_ = kept
}

// TestSamplingDoesNotAffectDurations: unsampled spans still time
// themselves, so latency histograms fed from End() stay complete.
func TestSamplingDoesNotAffectDurations(t *testing.T) {
	clock := NewFakeClock(time.Unix(1700000000, 0).UTC(), time.Millisecond)
	tr := NewTracer(clock.Now, 0)
	tr.SetSampling(1000000, 7) // keep (almost) nothing
	for i := 0; i < 10; i++ {
		sp := tr.Start("op")
		if d := sp.End(); d <= 0 {
			t.Fatalf("unsampled span %d returned duration %v", i, d)
		}
	}
}

func TestSamplingOffKeepsEverything(t *testing.T) {
	for _, n := range []int64{0, 1, -5} {
		tr := NewTracer(nil, 0)
		tr.SetSampling(n, 1)
		for i := 0; i < 20; i++ {
			tr.Start("op").End()
		}
		if got := len(tr.Snapshot()); got != 20 {
			t.Errorf("SetSampling(%d): kept %d of 20", n, got)
		}
		if tr.SampledOut() != 0 {
			t.Errorf("SetSampling(%d): SampledOut = %d", n, tr.SampledOut())
		}
	}
}

func TestObserverConfigSampling(t *testing.T) {
	o := NewObserverWith(Config{
		Clock:           NewFakeClock(time.Unix(1700000000, 0).UTC(), time.Millisecond).Now,
		SpanCapacity:    8,
		SpanSampleOneIn: 2,
		SampleSeed:      3,
	})
	for i := 0; i < 100; i++ {
		o.StartSpan("op").End()
	}
	spans := o.Tracer().Snapshot()
	if len(spans) == 0 || len(spans) > 8 {
		t.Errorf("retained %d spans, want 1..8 (capacity 8)", len(spans))
	}
	if o.Tracer().SampledOut() == 0 {
		t.Error("1-in-2 sampling over 100 spans skipped none")
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(NewFakeClock(time.Unix(1700000000, 0).UTC(), time.Millisecond).Now, 0)
	root := tr.Start("a")
	root.SetLabel("tool", "kbdd")
	child := root.StartChild("b")
	child.End()
	root.End()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d: %q", len(lines), buf.String())
	}
	// Lines come in ID (start) order: the root "a" first even though
	// it finished after its child.
	var first, second SpanRecord
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if first.ID >= second.ID {
		t.Errorf("JSONL not in ID order: %d then %d", first.ID, second.ID)
	}
	if first.Name != "a" || first.Labels["tool"] != "kbdd" {
		t.Errorf("root labels lost: %+v", first)
	}
	var nilTr *Tracer
	if err := nilTr.WriteJSONL(&buf); err != nil {
		t.Errorf("nil tracer WriteJSONL: %v", err)
	}
}
