package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer hands out Spans and keeps a bounded ring of finished span
// records. The clock is injectable so tests (and the deterministic
// flow snapshot) never depend on wall time. IDs are assigned in start
// order, so with a deterministic clock and call sequence the snapshot
// is fully reproducible.
//
// For long-running services the ring can additionally be *sampled*:
// with SetSampling(n, seed), only 1-in-n root spans (children follow
// their root's decision) are retained, chosen by a seeded hash of the
// span ID — deterministic for a given seed and call sequence, no RNG
// state to race on. Unsampled spans still time themselves (End
// returns the real duration, histograms fed from it are complete);
// they just never enter the ring.
type Tracer struct {
	mu         sync.Mutex
	clock      func() time.Time
	nextID     int64
	done       []SpanRecord // ring buffer, capacity cap
	cap        int
	next       int // ring write index
	wrapped    bool
	dropped    int64
	sampleN    int64  // keep 1-in-N roots; <=1 keeps everything
	sampleSeed uint64 // hash seed for the sampling decision
	sampledOut int64  // finished spans skipped by sampling
}

// DefaultSpanCapacity bounds the finished-span ring of a new Tracer.
const DefaultSpanCapacity = 4096

// NewTracer returns a tracer using the given clock (time.Now when
// nil) keeping at most capacity finished spans (DefaultSpanCapacity
// when <= 0).
func NewTracer(clock func() time.Time, capacity int) *Tracer {
	if clock == nil {
		clock = time.Now
	}
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Tracer{clock: clock, cap: capacity}
}

// SetSampling keeps 1-in-n root spans (n <= 1 keeps all), decided by
// a SplitMix64 hash of seed^spanID. Safe on nil; affects spans
// started after the call.
func (t *Tracer) SetSampling(n int64, seed uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sampleN = n
	t.sampleSeed = seed
	t.mu.Unlock()
}

// SampledOut reports how many finished spans the sampler skipped.
func (t *Tracer) SampledOut() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sampledOut
}

// sampleKeep decides whether a root span with the given id is
// retained. Callers must hold t.mu.
func (t *Tracer) sampleKeep(id int64) bool {
	if t.sampleN <= 1 {
		return true
	}
	z := t.sampleSeed ^ uint64(id)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return z%uint64(t.sampleN) == 0
}

// Span is one timed operation. Start it with Tracer.Start or
// Span.StartChild, optionally attach labels, then End it — only ended
// spans appear in snapshots. All methods are safe on a nil receiver.
type Span struct {
	tr      *Tracer
	id      int64
	parent  int64
	name    string
	start   time.Time
	sampled bool

	mu     sync.Mutex
	labels map[string]string
	ended  bool
	dur    time.Duration
}

// SpanRecord is a finished span as exported in snapshots.
type SpanRecord struct {
	ID       int64             `json:"id"`
	Parent   int64             `json:"parent,omitempty"` // 0 = root
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Labels   map[string]string `json:"labels,omitempty"`
}

// Start begins a root span. Safe on a nil tracer (returns nil).
func (t *Tracer) Start(name string) *Span { return t.start(name, nil) }

func (t *Tracer) start(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	now := t.clock()
	sp := &Span{tr: t, id: id, name: name, start: now}
	if parent != nil {
		// Children inherit the root's sampling decision so retained
		// traces are always whole.
		sp.parent = parent.id
		sp.sampled = parent.sampled
	} else {
		sp.sampled = t.sampleKeep(id)
	}
	t.mu.Unlock()
	return sp
}

// StartChild begins a span parented on s. Safe on a nil span.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.start(name, s)
}

// ID returns the span's id (0 for nil).
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetLabel attaches a key/value to the span. Safe on nil and after
// End (late labels are simply dropped from the record).
func (s *Span) SetLabel(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.labels == nil {
		s.labels = map[string]string{}
	}
	s.labels[k] = v
}

// End finishes the span, records it in the tracer's ring, and returns
// its duration. Ending twice records once. Safe on nil (returns 0).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	if s.ended {
		d := s.dur
		s.mu.Unlock()
		return d
	}
	s.ended = true
	labels := s.labels
	t := s.tr
	d := t.clock().Sub(s.start) // clock is immutable after NewTracer
	s.dur = d
	s.mu.Unlock()

	t.mu.Lock()
	if !s.sampled {
		t.sampledOut++
		t.mu.Unlock()
		return d
	}
	rec := SpanRecord{
		ID: s.id, Parent: s.parent, Name: s.name,
		Start: s.start, Duration: d, Labels: labels,
	}
	if len(t.done) < t.cap {
		t.done = append(t.done, rec)
	} else {
		t.done[t.next] = rec
		t.wrapped = true
	}
	t.next = (t.next + 1) % t.cap
	if t.wrapped {
		t.dropped++
	}
	t.mu.Unlock()
	return d
}

// Snapshot returns the finished spans, oldest first, sorted by start
// order (ID). Nil tracers snapshot empty.
func (t *Tracer) Snapshot() []SpanRecord { return t.SnapshotSince(0) }

// SnapshotSince returns finished spans with ID >= since, in ID order
// — handy for slicing out the spans belonging to one operation when
// IDs are allocated sequentially.
func (t *Tracer) SnapshotSince(since int64) []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanRecord, 0, len(t.done))
	for _, r := range t.done {
		if r.ID >= since {
			out = append(out, r)
		}
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Dropped reports how many finished spans fell off the ring.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteJSONL exports the retained spans as JSON Lines (one SpanRecord
// per line, ID order) — the /debug/spans wire format, greppable and
// streamable where the indented snapshot JSON is not. Safe on nil.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	for _, rec := range t.Snapshot() {
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}
