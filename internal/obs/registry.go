// Package obs is the repo's stdlib-only observability layer: a
// process-wide Registry of counters, gauges and fixed-bucket latency
// histograms; lightweight tracing Spans with an injectable clock; and
// a bounded structured event log. The paper's course ran as a cloud
// service evaluated entirely through usage statistics — this package
// is the instrument that lets the reproduction measure itself the
// same way (per-tool job counts, per-stage flow timings, grading
// pass-rates) before any scaling work.
//
// Everything is nil-safe: a nil *Registry, *Counter, *Span, etc. is a
// no-op, so instrumented code pays (almost) nothing when telemetry is
// detached. Snapshots are deterministic: given the same sequence of
// operations and the same (possibly fake) clock, the text and JSON
// exports are byte-for-byte identical.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that can move both ways (e.g. in-flight
// jobs).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by delta. Safe on a nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current reading (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefaultLatencyBuckets are histogram bounds in seconds, spanning
// microsecond tool calls to the portal's multi-second runaway limit.
func DefaultLatencyBuckets() []float64 {
	return []float64{
		1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
	}
}

// Histogram is a fixed-bucket distribution. Bucket i counts
// observations v <= Bounds[i]; the final implicit bucket counts the
// overflow.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a latency in seconds. Safe on nil.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is an immutable copy of a histogram's state.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1; last is overflow
}

// Mean returns Sum/Count (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Registry holds named metrics. All methods are safe for concurrent
// use and safe on a nil receiver (returning nil no-op metrics).
type Registry struct {
	mu          sync.RWMutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	hists       map[string]*Histogram
	counterVecs map[string]*CounterVec
	gaugeVecs   map[string]*GaugeVec
	histVecs    map[string]*HistogramVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    map[string]*Counter{},
		gauges:      map[string]*Gauge{},
		hists:       map[string]*Histogram{},
		counterVecs: map[string]*CounterVec{},
		gaugeVecs:   map[string]*GaugeVec{},
		histVecs:    map[string]*HistogramVec{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds (DefaultLatencyBuckets when none) on first use.
// Fetching an existing histogram with explicit bounds that differ
// from its registered ones panics: silently returning the old buckets
// would file observations into bounds the caller never asked for.
// Calls with no explicit bounds accept whatever is registered.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h == nil {
		r.mu.Lock()
		if h = r.hists[name]; h == nil {
			b := bounds
			if len(b) == 0 {
				b = DefaultLatencyBuckets()
			}
			h = newHistogram(b)
			r.hists[name] = h
		}
		r.mu.Unlock()
	}
	if len(bounds) > 0 {
		want := append([]float64(nil), bounds...)
		sort.Float64s(want)
		if !sameBounds(h.bounds, want) {
			panic("obs: histogram " + name + " re-registered with different bucket bounds")
		}
	}
	return h
}

// RegistrySnapshot is a point-in-time copy of every metric. The
// labeled-family slices are sorted by each series' LabelString, so a
// snapshot of a deterministic op sequence is itself deterministic.
type RegistrySnapshot struct {
	Counters      map[string]int64              `json:"counters,omitempty"`
	Gauges        map[string]float64            `json:"gauges,omitempty"`
	Histograms    map[string]HistogramSnapshot  `json:"histograms,omitempty"`
	CounterVecs   map[string][]LabeledCounter   `json:"counter_vecs,omitempty"`
	GaugeVecs     map[string][]LabeledGauge     `json:"gauge_vecs,omitempty"`
	HistogramVecs map[string][]LabeledHistogram `json:"histogram_vecs,omitempty"`
}

// snapHistogram copies one histogram's live state.
func snapHistogram(h *Histogram) HistogramSnapshot {
	hs := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		hs.Counts[i] = h.counts[i].Load()
	}
	return hs
}

// Snapshot copies the registry. Nil registries snapshot empty.
func (r *Registry) Snapshot() RegistrySnapshot {
	s := RegistrySnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = snapHistogram(h)
	}
	for name, v := range r.counterVecs {
		var series []LabeledCounter
		for _, key := range v.sortedChildKeys() {
			c, _ := v.m.Load(key)
			series = append(series, LabeledCounter{
				Labels: v.labels(key), Value: c.(*Counter).Value(),
			})
		}
		if series != nil {
			sort.Slice(series, func(i, j int) bool {
				return LabelString(series[i].Labels) < LabelString(series[j].Labels)
			})
			if s.CounterVecs == nil {
				s.CounterVecs = map[string][]LabeledCounter{}
			}
			s.CounterVecs[name] = series
		}
	}
	for name, v := range r.gaugeVecs {
		var series []LabeledGauge
		for _, key := range v.sortedChildKeys() {
			g, _ := v.m.Load(key)
			series = append(series, LabeledGauge{
				Labels: v.labels(key), Value: g.(*Gauge).Value(),
			})
		}
		if series != nil {
			sort.Slice(series, func(i, j int) bool {
				return LabelString(series[i].Labels) < LabelString(series[j].Labels)
			})
			if s.GaugeVecs == nil {
				s.GaugeVecs = map[string][]LabeledGauge{}
			}
			s.GaugeVecs[name] = series
		}
	}
	for name, v := range r.histVecs {
		var series []LabeledHistogram
		for _, key := range v.sortedChildKeys() {
			h, _ := v.m.Load(key)
			series = append(series, LabeledHistogram{
				Labels: v.labels(key), Hist: snapHistogram(h.(*Histogram)),
			})
		}
		if series != nil {
			sort.Slice(series, func(i, j int) bool {
				return LabelString(series[i].Labels) < LabelString(series[j].Labels)
			})
			if s.HistogramVecs == nil {
				s.HistogramVecs = map[string][]LabeledHistogram{}
			}
			s.HistogramVecs[name] = series
		}
	}
	return s
}

// WriteText renders the snapshot as an aligned, sorted metrics page.
func (s RegistrySnapshot) WriteText(w io.Writer) {
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "counter    %-40s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "gauge      %-40s %g\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(w, "histogram  %-40s count=%d sum=%.6g mean=%.6g\n",
			n, h.Count, h.Sum, h.Mean())
	}
	names = names[:0]
	for n := range s.CounterVecs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for _, sr := range s.CounterVecs[n] {
			fmt.Fprintf(w, "counter    %-40s %d\n",
				n+"{"+LabelString(sr.Labels)+"}", sr.Value)
		}
	}
	names = names[:0]
	for n := range s.GaugeVecs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for _, sr := range s.GaugeVecs[n] {
			fmt.Fprintf(w, "gauge      %-40s %g\n",
				n+"{"+LabelString(sr.Labels)+"}", sr.Value)
		}
	}
	names = names[:0]
	for n := range s.HistogramVecs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for _, sr := range s.HistogramVecs[n] {
			h := sr.Hist
			fmt.Fprintf(w, "histogram  %-40s count=%d sum=%.6g mean=%.6g\n",
				n+"{"+LabelString(sr.Labels)+"}", h.Count, h.Sum, h.Mean())
		}
	}
}
