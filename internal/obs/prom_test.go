package obs

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry replays a fixed operation sequence under a fake
// clock — the canonical page the golden file pins down.
func goldenRegistry() *Observer {
	clock := NewFakeClock(time.Unix(1700000000, 0).UTC(), time.Millisecond)
	o := NewObserver(clock.Now)
	r := o.Registry()

	r.Counter("flow_runs_total").Add(3)
	r.Counter("pool_jobs_total").Add(42)
	r.Gauge("pool_queue_depth").Set(5)
	r.Gauge("runtime_goroutines").Set(12)

	jobs := r.CounterVec("pool_tool_jobs_total", "tool")
	jobs.With("kbdd").Add(17)
	jobs.With("espresso").Add(9)
	jobs.With("minisat").Add(1)
	shed := r.CounterVec("pool_tool_shed_total", "tool", "reason")
	shed.With("kbdd", "queue").Add(2)
	shed.With("kbdd", "breaker").Add(1)
	state := r.GaugeVec("portal_breaker_state", "tool")
	state.With("kbdd").Set(0)
	state.With("espresso").Set(2)

	h := r.Histogram("flow_total_seconds", 0.001, 0.01, 0.1, 1)
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(3)
	hv := r.HistogramVec("pool_tool_job_seconds", []string{"tool"}, 0.001, 0.1, 10)
	hv.With("kbdd").Observe(0.002)
	hv.With("kbdd").Observe(0.2)
	hv.With("espresso").Observe(0.0001)

	// A name needing sanitization ('-' → '_') and a value needing
	// escaping exercise the writer's corner paths.
	r.Counter("pool_breaker_half-open").Add(4)
	r.CounterVec("odd_labels_total", "path").With(`a"b\c` + "\n").Inc()
	return o
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Registry().Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to record)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s",
			buf.Bytes(), want)
	}
	// The page we pin must itself be well-formed.
	if err := ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("golden page fails validation: %v", err)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		if err := goldenRegistry().Registry().Snapshot().WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Error("two renders of the same op sequence differ")
	}
}

func TestWritePrometheusHistogramShape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", 0.1, 1)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := `# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="1"} 2
lat_seconds_bucket{le="+Inf"} 3
lat_seconds_sum 5.55
lat_seconds_count 3
`
	if got != want {
		t.Errorf("histogram exposition:\n got %q\nwant %q", got, want)
	}
}

func TestValidateExposition(t *testing.T) {
	ok := []string{
		"# TYPE a counter\na 1\n",
		"# TYPE a gauge\na{x=\"y\"} 1.5\n",
		"# HELP a something\n# TYPE a counter\na 1\n",
		"# TYPE lat histogram\nlat_bucket{le=\"+Inf\"} 1\nlat_sum 0.5\nlat_count 1\n",
		"# TYPE a counter\na{x=\"comma,inside\",y=\"z\"} 2\n",
	}
	for i, page := range ok {
		if err := ValidateExposition(strings.NewReader(page)); err != nil {
			t.Errorf("valid page %d rejected: %v", i, err)
		}
	}
	bad := map[string]string{
		"undeclared sample":  "a 1\n",
		"bad family name":    "# TYPE 9bad counter\n9bad 1\n",
		"bad family type":    "# TYPE a wat\na 1\n",
		"bad metric name":    "# TYPE a counter\na-b 1\n",
		"unterminated block": "# TYPE a counter\na{x=\"y\" 1\n",
		"unquoted value":     "# TYPE a counter\na{x=y} 1\n",
		"bad label name":     "# TYPE a counter\na{9x=\"y\"} 1\n",
		"missing value":      "# TYPE a counter\na{x=\"y\"}\n",
		"bad value":          "# TYPE a counter\na potato\n",
	}
	for name, page := range bad {
		if err := ValidateExposition(strings.NewReader(page)); err == nil {
			t.Errorf("%s: malformed page accepted", name)
		}
	}
}

func TestPromNameCollision(t *testing.T) {
	// "a-b" (counter) and "a_b" (gauge) sanitize to the same name with
	// different types; the writer must not emit two TYPE lines for one
	// family name.
	r := NewRegistry()
	r.Counter("a-b").Inc()
	r.Gauge("a_b").Set(1)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("collision page invalid: %v\n%s", err, buf.String())
	}
	if c := strings.Count(buf.String(), "# TYPE a_b "); c != 1 {
		t.Errorf("family a_b declared %d times:\n%s", c, buf.String())
	}
}

// TestPrometheusScrapeUnderLoad renders the page while writers mutate
// the registry — under -race this is the concurrent scrape check; in
// all modes every produced page must parse.
func TestPrometheusScrapeUnderLoad(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := r.CounterVec("load_total", "worker")
			hv := r.HistogramVec("load_seconds", []string{"worker"}, 0.001, 0.1)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v.With(fmt.Sprintf("w%d", (w+i)%8)).Inc()
				hv.With(fmt.Sprintf("w%d", w)).Observe(0.01)
				r.Gauge("load_gauge").Set(float64(i))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.Snapshot().WritePrometheus(&buf); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		if err := ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("scrape %d malformed: %v\n%s", i, err, buf.String())
		}
	}
	close(stop)
	wg.Wait()
}
