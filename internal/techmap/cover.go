package techmap

import (
	"fmt"
	"math"
	"sort"
)

// Objective selects the covering cost function.
type Objective int

const (
	// MinArea minimizes total gate area.
	MinArea Objective = iota
	// MinDelay minimizes the worst output arrival time under the
	// library's gate delays.
	MinDelay
)

// Match is one chosen gate instance in the cover.
type Match struct {
	Gate   string
	Root   int   // subject node implemented by the gate output
	Leaves []int // subject nodes feeding the gate pins
}

// Result is a completed mapping.
type Result struct {
	Matches []Match
	Area    float64
	Delay   float64 // worst output arrival under the chosen cover
}

// sol is the per-node dynamic-programming entry.
type sol struct {
	cost   float64
	gate   int
	leaves []int
}

// Map covers the subject graph with library gates using dynamic
// programming per tree: trees are split at multi-fanout points, whose
// roots become free leaves of the trees that consume them, exactly as
// the course presents tree covering.
func Map(s *Subject, lib []Gate, obj Objective) (*Result, error) {
	if len(lib) == 0 {
		return nil, fmt.Errorf("techmap: empty library")
	}
	boundary := func(id int) bool {
		n := s.Nodes[id]
		return n.Kind == KInput || s.Fanout(id) > 1
	}

	best := make([]sol, len(s.Nodes))
	for i := range best {
		best[i] = sol{cost: math.Inf(1), gate: -1}
	}

	// matchAt overlays a pattern on the subject graph rooted at id,
	// collecting the subject nodes under the pattern's pins.
	var matchAt func(p *Pattern, id int, leaves *[]int) bool
	matchAt = func(p *Pattern, id int, leaves *[]int) bool {
		switch p.Kind {
		case KInput:
			*leaves = append(*leaves, id)
			return true
		case KInv:
			n := s.Nodes[id]
			if n.Kind != KInv {
				return false
			}
			return matchAt(p.A, n.A, leaves)
		default: // KNand
			n := s.Nodes[id]
			if n.Kind != KNand {
				return false
			}
			save := len(*leaves)
			if matchAt(p.A, n.A, leaves) && matchAt(p.B, n.B, leaves) {
				return true
			}
			*leaves = (*leaves)[:save]
			if matchAt(p.A, n.B, leaves) && matchAt(p.B, n.A, leaves) {
				return true
			}
			*leaves = (*leaves)[:save]
			return false
		}
	}

	// Nodes are created children-first, so id order is topological.
	for id := range s.Nodes {
		n := s.Nodes[id]
		if n.Kind == KInput {
			best[id] = sol{cost: 0, gate: -1}
			continue
		}
		for gi, g := range lib {
			var leaves []int
			if !matchAt(g.Pat, id, &leaves) {
				continue
			}
			// Nodes strictly inside the match must have a single
			// fanout; otherwise shared logic would be duplicated.
			if !internalNodesFree(s, g.Pat, id, boundary) {
				continue
			}
			var cost float64
			if obj == MinDelay {
				worst := 0.0
				for _, leaf := range leaves {
					if a := best[leaf].cost; s.Nodes[leaf].Kind != KInput && a > worst {
						worst = a
					}
				}
				cost = worst + g.Delay
			} else {
				cost = g.Area
				for _, leaf := range leaves {
					// A boundary (multi-fanout) leaf's area is paid
					// once when its own tree is emitted; inside one
					// tree the child's DP cost folds in.
					if s.Nodes[leaf].Kind != KInput && !boundary(leaf) {
						cost += best[leaf].cost
					}
				}
			}
			if cost < best[id].cost {
				best[id] = sol{cost: cost, gate: gi, leaves: leaves}
			}
		}
		if best[id].gate < 0 {
			return nil, fmt.Errorf("techmap: node %d unmatchable with library", id)
		}
	}

	// Emit matches reachable from the roots.
	res := &Result{}
	emitted := map[int]bool{}
	var emit func(id int)
	emit = func(id int) {
		if emitted[id] || s.Nodes[id].Kind == KInput {
			return
		}
		emitted[id] = true
		b := best[id]
		g := lib[b.gate]
		res.Matches = append(res.Matches, Match{Gate: g.Name, Root: id, Leaves: b.leaves})
		res.Area += g.Area
		for _, leaf := range b.leaves {
			emit(leaf)
		}
	}
	var rootIDs []int
	for _, r := range s.Roots {
		rootIDs = append(rootIDs, r)
	}
	sort.Ints(rootIDs)
	for _, r := range rootIDs {
		emit(r)
	}
	res.Delay = mappedDelay(s, lib, best, rootIDs)
	sort.Slice(res.Matches, func(i, j int) bool { return res.Matches[i].Root < res.Matches[j].Root })
	return res, nil
}

// internalNodesFree checks that every subject node strictly inside the
// pattern match (not the root, not under a pin) has a single fanout.
func internalNodesFree(s *Subject, p *Pattern, id int, boundary func(int) bool) bool {
	var walk func(p *Pattern, sid int, isRoot bool) bool
	walk = func(p *Pattern, sid int, isRoot bool) bool {
		if p.Kind == KInput {
			return true
		}
		if !isRoot && boundary(sid) {
			return false
		}
		n := s.Nodes[sid]
		switch p.Kind {
		case KInv:
			if n.Kind != KInv {
				return false
			}
			return walk(p.A, n.A, false)
		default:
			if n.Kind != KNand {
				return false
			}
			if walk(p.A, n.A, false) && walk(p.B, n.B, false) {
				return true
			}
			return walk(p.A, n.B, false) && walk(p.B, n.A, false)
		}
	}
	return walk(p, id, true)
}

// mappedDelay computes the worst root arrival with a forward pass over
// the chosen matches.
func mappedDelay(s *Subject, lib []Gate, best []sol, roots []int) float64 {
	arr := map[int]float64{}
	var at func(id int) float64
	at = func(id int) float64 {
		if s.Nodes[id].Kind == KInput {
			return 0
		}
		if v, ok := arr[id]; ok {
			return v
		}
		b := best[id]
		worst := 0.0
		for _, leaf := range b.leaves {
			if a := at(leaf); a > worst {
				worst = a
			}
		}
		v := worst + lib[b.gate].Delay
		arr[id] = v
		return v
	}
	worst := 0.0
	for _, r := range roots {
		if a := at(r); a > worst {
			worst = a
		}
	}
	return worst
}

// EvalMapping simulates the mapped gates on one input assignment and
// returns each root's value — used to verify that mapping preserved
// the function.
func EvalMapping(s *Subject, res *Result, inputs map[string]bool) map[string]bool {
	// The match set covers exactly the subject nodes; gate semantics
	// equal subject semantics by construction, so simulating the
	// subject graph suffices — but we simulate gate-by-gate to test
	// the cover itself.
	gateOf := map[int]Match{}
	for _, mt := range res.Matches {
		gateOf[mt.Root] = mt
	}
	memo := map[int]bool{}
	var val func(id int) bool
	val = func(id int) bool {
		n := s.Nodes[id]
		if n.Kind == KInput {
			return leafValue(n.Name, inputs)
		}
		if v, ok := memo[id]; ok {
			return v
		}
		mt, ok := gateOf[id]
		if !ok {
			// Node interior to some gate: fall back to subject logic.
			switch n.Kind {
			case KInv:
				return !val(n.A)
			default:
				return !(val(n.A) && val(n.B))
			}
		}
		// Evaluate the gate's pattern over its leaf values.
		var g *Gate
		lib := StandardLibrary()
		for i := range lib {
			if lib[i].Name == mt.Gate {
				g = &lib[i]
				break
			}
		}
		if g == nil {
			lib = MinimalLibrary()
			for i := range lib {
				if lib[i].Name == mt.Gate {
					g = &lib[i]
					break
				}
			}
		}
		leafVals := make([]bool, len(mt.Leaves))
		for i, leaf := range mt.Leaves {
			leafVals[i] = val(leaf)
		}
		idx := 0
		v := evalPattern(g.Pat, leafVals, &idx)
		memo[id] = v
		return v
	}
	out := map[string]bool{}
	for name, r := range s.Roots {
		out[name] = val(r)
	}
	return out
}

func evalPattern(p *Pattern, leaves []bool, idx *int) bool {
	switch p.Kind {
	case KInput:
		v := leaves[*idx]
		*idx++
		return v
	case KInv:
		return !evalPattern(p.A, leaves, idx)
	default:
		a := evalPattern(p.A, leaves, idx)
		b := evalPattern(p.B, leaves, idx)
		return !(a && b)
	}
}
