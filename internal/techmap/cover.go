package techmap

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sync"
)

// Objective selects the covering cost function.
type Objective int

const (
	// MinArea minimizes total gate area.
	MinArea Objective = iota
	// MinDelay minimizes the worst output arrival time under the
	// library's gate delays.
	MinDelay
)

// Match is one chosen gate instance in the cover.
type Match struct {
	Gate   string
	Root   int   // subject node implemented by the gate output
	Leaves []int // subject nodes feeding the gate pins
}

// Result is a completed mapping.
type Result struct {
	Matches []Match
	Area    float64
	Delay   float64 // worst output arrival under the chosen cover
}

// sol is the per-node dynamic-programming entry. The winning match's
// leaf nodes live in the scratch arena at [off, off+n) — storing an
// offset pair instead of a slice lets a better candidate supersede a
// worse one without either allocating.
type sol struct {
	cost float64
	gate int32
	off  int32
	n    int32
}

// mapScratch holds Map's recyclable working state: the DP table and
// its leaf arena, the candidate-match probe buffer, the emit ledger
// and the delay-pass arrival table. A sync.Pool recycles it across
// calls, so a Map run allocates only its Result once the pool is warm
// (the route/anneal/place scratch pattern).
type mapScratch struct {
	best    []sol
	arena   []int32 // committed DP leaves, addressed by sol.off/sol.n
	probe   []int32 // per-candidate matchAt accumulator
	order   []int32 // emit order: match roots in pre-order DFS from the roots
	emitted []bool
	arr     []float64 // mappedDelay arrivals
	done    []bool
	roots   []int
}

var mapScratchPool = sync.Pool{New: func() any { return new(mapScratch) }}

func acquireMapScratch(n int) *mapScratch {
	sc := mapScratchPool.Get().(*mapScratch)
	if cap(sc.best) < n {
		sc.best = make([]sol, n)
		sc.emitted = make([]bool, n)
		sc.arr = make([]float64, n)
		sc.done = make([]bool, n)
	} else {
		sc.best = sc.best[:n]
		sc.emitted = sc.emitted[:n]
		sc.arr = sc.arr[:n]
		sc.done = sc.done[:n]
	}
	clear(sc.emitted)
	clear(sc.done)
	sc.arena = sc.arena[:0]
	sc.probe = sc.probe[:0]
	sc.order = sc.order[:0]
	sc.roots = sc.roots[:0]
	return sc
}

// matchAt overlays a pattern on the subject graph rooted at id,
// collecting the subject nodes under the pattern's pins.
func matchAt(s *Subject, p *Pattern, id int, leaves *[]int32) bool {
	switch p.Kind {
	case KInput:
		*leaves = append(*leaves, int32(id))
		return true
	case KInv:
		n := s.Nodes[id]
		if n.Kind != KInv {
			return false
		}
		return matchAt(s, p.A, n.A, leaves)
	default: // KNand
		n := s.Nodes[id]
		if n.Kind != KNand {
			return false
		}
		save := len(*leaves)
		if matchAt(s, p.A, n.A, leaves) && matchAt(s, p.B, n.B, leaves) {
			return true
		}
		*leaves = (*leaves)[:save]
		if matchAt(s, p.A, n.B, leaves) && matchAt(s, p.B, n.A, leaves) {
			return true
		}
		*leaves = (*leaves)[:save]
		return false
	}
}

// Map covers the subject graph with library gates using dynamic
// programming per tree: trees are split at multi-fanout points, whose
// roots become free leaves of the trees that consume them, exactly as
// the course presents tree covering.
func Map(s *Subject, lib []Gate, obj Objective) (*Result, error) {
	if len(lib) == 0 {
		return nil, fmt.Errorf("techmap: empty library")
	}
	boundary := func(id int) bool {
		n := s.Nodes[id]
		return n.Kind == KInput || s.Fanout(id) > 1
	}

	sc := acquireMapScratch(len(s.Nodes))
	defer mapScratchPool.Put(sc)
	best := sc.best
	for i := range best {
		best[i] = sol{cost: math.Inf(1), gate: -1}
	}

	// Nodes are created children-first, so id order is topological.
	for id := range s.Nodes {
		n := s.Nodes[id]
		if n.Kind == KInput {
			best[id] = sol{cost: 0, gate: -1}
			continue
		}
		for gi, g := range lib {
			sc.probe = sc.probe[:0]
			if !matchAt(s, g.Pat, id, &sc.probe) {
				continue
			}
			// Nodes strictly inside the match must have a single
			// fanout; otherwise shared logic would be duplicated.
			if !internalNodesFree(s, g.Pat, id, true) {
				continue
			}
			var cost float64
			if obj == MinDelay {
				worst := 0.0
				for _, leaf := range sc.probe {
					if a := best[leaf].cost; s.Nodes[leaf].Kind != KInput && a > worst {
						worst = a
					}
				}
				cost = worst + g.Delay
			} else {
				cost = g.Area
				for _, leaf := range sc.probe {
					// A boundary (multi-fanout) leaf's area is paid
					// once when its own tree is emitted; inside one
					// tree the child's DP cost folds in.
					if s.Nodes[leaf].Kind != KInput && !boundary(int(leaf)) {
						cost += best[leaf].cost
					}
				}
			}
			if cost < best[id].cost {
				best[id] = sol{cost: cost, gate: int32(gi),
					off: int32(len(sc.arena)), n: int32(len(sc.probe))}
				sc.arena = append(sc.arena, sc.probe...)
			}
		}
		if best[id].gate < 0 {
			return nil, fmt.Errorf("techmap: node %d unmatchable with library", id)
		}
	}

	// Emit matches reachable from the roots: first walk the cover in
	// pre-order DFS to fix the emit order, then fill an exactly-sized
	// Result whose Leaves slices share one fresh backing array — the
	// Result never references pooled memory.
	var emit func(id int)
	emit = func(id int) {
		if sc.emitted[id] || s.Nodes[id].Kind == KInput {
			return
		}
		sc.emitted[id] = true
		sc.order = append(sc.order, int32(id))
		b := best[id]
		for k := b.off; k < b.off+b.n; k++ {
			emit(int(sc.arena[k]))
		}
	}
	for _, r := range s.Roots {
		sc.roots = append(sc.roots, r)
	}
	slices.Sort(sc.roots)
	for _, r := range sc.roots {
		emit(r)
	}
	total := 0
	for _, id := range sc.order {
		total += int(best[id].n)
	}
	res := &Result{Matches: make([]Match, len(sc.order))}
	backing := make([]int, total)
	at := 0
	for mi, id := range sc.order {
		b := best[id]
		g := lib[b.gate]
		seg := backing[at : at+int(b.n) : at+int(b.n)]
		for k := range seg {
			seg[k] = int(sc.arena[b.off+int32(k)])
		}
		at += int(b.n)
		res.Matches[mi] = Match{Gate: g.Name, Root: int(id), Leaves: seg}
		res.Area += g.Area
	}
	res.Delay = mappedDelay(s, lib, sc)
	slices.SortFunc(res.Matches, func(a, b Match) int { return cmp.Compare(a.Root, b.Root) })
	return res, nil
}

// internalNodesFree checks that every subject node strictly inside the
// pattern match (not the root, not under a pin) has a single fanout.
func internalNodesFree(s *Subject, p *Pattern, sid int, isRoot bool) bool {
	if p.Kind == KInput {
		return true
	}
	if !isRoot {
		if n := s.Nodes[sid]; n.Kind == KInput || s.Fanout(sid) > 1 {
			return false
		}
	}
	n := s.Nodes[sid]
	switch p.Kind {
	case KInv:
		if n.Kind != KInv {
			return false
		}
		return internalNodesFree(s, p.A, n.A, false)
	default:
		if n.Kind != KNand {
			return false
		}
		if internalNodesFree(s, p.A, n.A, false) && internalNodesFree(s, p.B, n.B, false) {
			return true
		}
		return internalNodesFree(s, p.A, n.B, false) && internalNodesFree(s, p.B, n.A, false)
	}
}

// mappedDelay computes the worst root arrival with a forward pass over
// the chosen matches, memoizing into the scratch arrival table.
func mappedDelay(s *Subject, lib []Gate, sc *mapScratch) float64 {
	var at func(id int) float64
	at = func(id int) float64 {
		if s.Nodes[id].Kind == KInput {
			return 0
		}
		if sc.done[id] {
			return sc.arr[id]
		}
		b := sc.best[id]
		worst := 0.0
		for k := b.off; k < b.off+b.n; k++ {
			if a := at(int(sc.arena[k])); a > worst {
				worst = a
			}
		}
		v := worst + lib[b.gate].Delay
		sc.arr[id] = v
		sc.done[id] = true
		return v
	}
	worst := 0.0
	for _, r := range sc.roots {
		if a := at(r); a > worst {
			worst = a
		}
	}
	return worst
}

// EvalMapping simulates the mapped gates on one input assignment and
// returns each root's value — used to verify that mapping preserved
// the function.
func EvalMapping(s *Subject, res *Result, inputs map[string]bool) map[string]bool {
	// The match set covers exactly the subject nodes; gate semantics
	// equal subject semantics by construction, so simulating the
	// subject graph suffices — but we simulate gate-by-gate to test
	// the cover itself.
	gateOf := map[int]Match{}
	for _, mt := range res.Matches {
		gateOf[mt.Root] = mt
	}
	memo := map[int]bool{}
	var val func(id int) bool
	val = func(id int) bool {
		n := s.Nodes[id]
		if n.Kind == KInput {
			return leafValue(n.Name, inputs)
		}
		if v, ok := memo[id]; ok {
			return v
		}
		mt, ok := gateOf[id]
		if !ok {
			// Node interior to some gate: fall back to subject logic.
			switch n.Kind {
			case KInv:
				return !val(n.A)
			default:
				return !(val(n.A) && val(n.B))
			}
		}
		// Evaluate the gate's pattern over its leaf values.
		var g *Gate
		lib := StandardLibrary()
		for i := range lib {
			if lib[i].Name == mt.Gate {
				g = &lib[i]
				break
			}
		}
		if g == nil {
			lib = MinimalLibrary()
			for i := range lib {
				if lib[i].Name == mt.Gate {
					g = &lib[i]
					break
				}
			}
		}
		leafVals := make([]bool, len(mt.Leaves))
		for i, leaf := range mt.Leaves {
			leafVals[i] = val(leaf)
		}
		idx := 0
		v := evalPattern(g.Pat, leafVals, &idx)
		memo[id] = v
		return v
	}
	out := map[string]bool{}
	for name, r := range s.Roots {
		out[name] = val(r)
	}
	return out
}

func evalPattern(p *Pattern, leaves []bool, idx *int) bool {
	switch p.Kind {
	case KInput:
		v := leaves[*idx]
		*idx++
		return v
	case KInv:
		return !evalPattern(p.A, leaves, idx)
	default:
		a := evalPattern(p.A, leaves, idx)
		b := evalPattern(p.B, leaves, idx)
		return !(a && b)
	}
}
