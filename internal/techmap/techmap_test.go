package techmap

import (
	"math/rand"
	"strings"
	"testing"

	"vlsicad/internal/netlist"
)

const adderBLIF = `
.model adder
.inputs a b cin
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
`

func subject(t *testing.T, src string) (*Subject, *netlist.Network) {
	t.Helper()
	nw, err := netlist.ParseBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	s, err := FromNetwork(nw)
	if err != nil {
		t.Fatal(err)
	}
	return s, nw
}

func TestSubjectStructuralHashing(t *testing.T) {
	s := NewSubject()
	a, b := s.Input("a"), s.Input("b")
	n1 := s.Nand(a, b)
	n2 := s.Nand(b, a)
	if n1 != n2 {
		t.Error("commutative NAND should hash to same node")
	}
	if s.Input("a") != a {
		t.Error("input leaf not reused")
	}
	if s.Inv(a) != s.Inv(a) {
		t.Error("INV not hashed")
	}
}

func TestSubjectMatchesNetwork(t *testing.T) {
	s, nw := subject(t, adderBLIF)
	for x := 0; x < 8; x++ {
		in := map[string]bool{"a": x&1 != 0, "b": x&2 != 0, "cin": x&4 != 0}
		want, err := nw.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		val := s.Eval(in)
		for name, root := range s.Roots {
			if val[root] != want[name] {
				t.Errorf("x=%d output %s: subject %v, network %v", x, name, val[root], want[name])
			}
		}
	}
}

func TestMapAreaAdder(t *testing.T) {
	s, nw := subject(t, adderBLIF)
	res, err := Map(s, StandardLibrary(), MinArea)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 || res.Area <= 0 {
		t.Fatal("empty mapping")
	}
	// Mapped circuit must compute the same function.
	for x := 0; x < 8; x++ {
		in := map[string]bool{"a": x&1 != 0, "b": x&2 != 0, "cin": x&4 != 0}
		want, _ := nw.Eval(in)
		got := EvalMapping(s, res, in)
		for name := range s.Roots {
			if got[name] != want[name] {
				t.Errorf("x=%d output %s: mapped %v, want %v", x, name, got[name], want[name])
			}
		}
	}
}

func TestRichLibraryBeatsMinimal(t *testing.T) {
	s, _ := subject(t, adderBLIF)
	rich, err := Map(s, StandardLibrary(), MinArea)
	if err != nil {
		t.Fatal(err)
	}
	min, err := Map(s, MinimalLibrary(), MinArea)
	if err != nil {
		t.Fatal(err)
	}
	if rich.Area > min.Area {
		t.Errorf("rich library area %.1f should be <= minimal %.1f", rich.Area, min.Area)
	}
}

func TestDelayObjectiveNotWorseThanAreaOnDelay(t *testing.T) {
	s, _ := subject(t, adderBLIF)
	areaRes, err := Map(s, StandardLibrary(), MinArea)
	if err != nil {
		t.Fatal(err)
	}
	delayRes, err := Map(s, StandardLibrary(), MinDelay)
	if err != nil {
		t.Fatal(err)
	}
	if delayRes.Delay > areaRes.Delay+1e-9 {
		t.Errorf("delay mapping (%.2f) should not be slower than area mapping (%.2f)",
			delayRes.Delay, areaRes.Delay)
	}
}

func TestMapEmptyLibrary(t *testing.T) {
	s, _ := subject(t, adderBLIF)
	if _, err := Map(s, nil, MinArea); err == nil {
		t.Error("empty library should fail")
	}
}

func TestMapRandomNetworks(t *testing.T) {
	// Random two-level networks: map and verify functionally on all
	// inputs.
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 20; iter++ {
		var b strings.Builder
		b.WriteString(".model r\n.inputs a b c d\n.outputs f\n.names a b c d f\n")
		rows := 1 + rng.Intn(5)
		for i := 0; i < rows; i++ {
			for j := 0; j < 4; j++ {
				b.WriteByte("01-"[rng.Intn(3)])
			}
			b.WriteString(" 1\n")
		}
		b.WriteString(".end\n")
		s, nw := subject(t, b.String())
		res, err := Map(s, StandardLibrary(), MinArea)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for x := 0; x < 16; x++ {
			in := map[string]bool{"a": x&1 != 0, "b": x&2 != 0, "c": x&4 != 0, "d": x&8 != 0}
			want, _ := nw.Eval(in)
			got := EvalMapping(s, res, in)
			if got["f"] != want["f"] {
				t.Fatalf("iter %d x=%d: mapped %v want %v\n%s", iter, x, got["f"], want["f"], b.String())
			}
		}
	}
}

func TestPatternPins(t *testing.T) {
	for _, g := range StandardLibrary() {
		if g.Pat.Pins() < 1 {
			t.Errorf("gate %s has no pins", g.Name)
		}
	}
	lib := StandardLibrary()
	byName := map[string]int{}
	for _, g := range lib {
		byName[g.Name] = g.Pat.Pins()
	}
	if byName["INV"] != 1 || byName["NAND2"] != 2 || byName["NAND3"] != 3 || byName["AOI22"] != 4 {
		t.Errorf("pin counts wrong: %v", byName)
	}
}

func TestSubjectStats(t *testing.T) {
	s, _ := subject(t, adderBLIF)
	ins, invs, nands := s.Stats()
	if ins != 3 {
		t.Errorf("inputs = %d", ins)
	}
	if invs == 0 || nands == 0 {
		t.Error("expected INV and NAND nodes")
	}
	names := s.InputNames()
	if len(names) != 3 || names[0] != "a" {
		t.Errorf("InputNames = %v", names)
	}
}

func TestConstantsInNetwork(t *testing.T) {
	src := `
.model c
.inputs a
.outputs f g
.names one
1
.names a one f
11 1
.names a g
1 1
.end
`
	s, nw := subject(t, src)
	res, err := Map(s, StandardLibrary(), MinArea)
	if err != nil {
		t.Fatal(err)
	}
	for _, av := range []bool{false, true} {
		in := map[string]bool{"a": av, "$const1": true, "$const0": false}
		want, _ := nw.Eval(map[string]bool{"a": av})
		got := EvalMapping(s, res, in)
		if got["f"] != want["f"] || got["g"] != want["g"] {
			t.Errorf("a=%v: got f=%v g=%v want f=%v g=%v", av, got["f"], got["g"], want["f"], want["g"])
		}
	}
}
