package techmap

// Library gates are pattern trees over the NAND2/INV basis, as the
// course presents tree covering: every gate's logic is expressed as a
// small NAND/INV tree whose leaves are the gate's pins.

// Pattern is a node in a gate's pattern tree.
type Pattern struct {
	Kind Kind // KInput = pin (wildcard leaf), KInv, KNand
	A, B *Pattern
}

// Gate is a library cell with its pattern, area cost and pin-to-pin
// delay (a single worst-case number, as in the course's simple delay
// model).
type Gate struct {
	Name  string
	Area  float64
	Delay float64
	Pat   *Pattern
}

func pin() *Pattern            { return &Pattern{Kind: KInput} }
func pinv(a *Pattern) *Pattern { return &Pattern{Kind: KInv, A: a} }
func pnand(a, b *Pattern) *Pattern {
	return &Pattern{Kind: KNand, A: a, B: b}
}

// Pins counts the wildcard leaves of the pattern.
func (p *Pattern) Pins() int {
	switch p.Kind {
	case KInput:
		return 1
	case KInv:
		return p.A.Pins()
	default:
		return p.A.Pins() + p.B.Pins()
	}
}

// StandardLibrary returns the course's teaching cell library: INV,
// NAND2/3/4, NOR2, AND2, OR2 and AOI21/AOI22, with the classic
// area/delay numbers used in the lecture examples.
func StandardLibrary() []Gate {
	inv := pinv(pin())
	nand2 := pnand(pin(), pin())
	nand3 := pnand(pinv(pnand(pin(), pin())), pin())
	nand4a := pnand(pinv(pnand(pin(), pin())), pinv(pnand(pin(), pin())))
	nand4b := pnand(pinv(pnand(pinv(pnand(pin(), pin())), pin())), pin())
	nor2 := pinv(pnand(pinv(pin()), pinv(pin())))
	and2 := pinv(pnand(pin(), pin()))
	or2 := pnand(pinv(pin()), pinv(pin()))
	// AOI21: (ab + c)' = INV(NAND(NAND(a,b)', c')') — as NAND/INV tree:
	// ab + c = NAND(NAND(a,b), INV(c)), so AOI21 = INV of that.
	aoi21 := pinv(pnand(pnand(pin(), pin()), pinv(pin())))
	// AOI22: (ab + cd)'.
	aoi22 := pinv(pnand(pnand(pin(), pin()), pnand(pin(), pin())))

	return []Gate{
		{Name: "INV", Area: 1, Delay: 1, Pat: inv},
		{Name: "NAND2", Area: 2, Delay: 1, Pat: nand2},
		{Name: "NAND3", Area: 3, Delay: 1.5, Pat: nand3},
		{Name: "NAND4", Area: 4, Delay: 2, Pat: nand4a},
		{Name: "NAND4B", Area: 4, Delay: 2, Pat: nand4b},
		{Name: "NOR2", Area: 2, Delay: 1.2, Pat: nor2},
		{Name: "AND2", Area: 3, Delay: 1.8, Pat: and2},
		{Name: "OR2", Area: 3, Delay: 1.8, Pat: or2},
		{Name: "AOI21", Area: 3, Delay: 1.6, Pat: aoi21},
		{Name: "AOI22", Area: 4, Delay: 1.8, Pat: aoi22},
	}
}

// MinimalLibrary returns just INV and NAND2 — the baseline against
// which richer libraries are compared in the course's mapping
// examples.
func MinimalLibrary() []Gate {
	return []Gate{
		{Name: "INV", Area: 1, Delay: 1, Pat: pinv(pin())},
		{Name: "NAND2", Area: 2, Delay: 1, Pat: pnand(pin(), pin())},
	}
}
