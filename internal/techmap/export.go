package techmap

import (
	"fmt"
	"sort"

	"vlsicad/internal/cube"
	"vlsicad/internal/netlist"
)

// ToNetwork exports a mapping as a gate-level netlist.Network: one
// node per emitted gate whose cover is the gate's truth table over its
// pins. This lets the mapped design be formally verified against the
// pre-mapping network with the Week-2 equivalence checkers.
func ToNetwork(s *Subject, res *Result, lib []Gate, name string, inputs, outputs []string) (*netlist.Network, error) {
	gateByName := map[string]*Gate{}
	for i := range lib {
		gateByName[lib[i].Name] = &lib[i]
	}
	nw := netlist.New(name)
	for _, in := range inputs {
		nw.AddInput(in)
	}
	sig := func(id int) string {
		n := s.Nodes[id]
		if n.Kind == KInput {
			return n.Name
		}
		return fmt.Sprintf("n%d", id)
	}
	// Constant leaves become constant nodes on demand.
	needConst := map[string]bool{}
	matches := append([]Match(nil), res.Matches...)
	sort.Slice(matches, func(i, j int) bool { return matches[i].Root < matches[j].Root })
	for _, m := range matches {
		g, ok := gateByName[m.Gate]
		if !ok {
			return nil, fmt.Errorf("techmap: unknown gate %q in mapping", m.Gate)
		}
		fanins := make([]string, len(m.Leaves))
		for i, leaf := range m.Leaves {
			fanins[i] = sig(leaf)
			if fanins[i] == "$const0" || fanins[i] == "$const1" {
				needConst[fanins[i]] = true
			}
		}
		cov, err := patternCover(g.Pat, len(m.Leaves))
		if err != nil {
			return nil, fmt.Errorf("techmap: gate %s: %v", m.Gate, err)
		}
		nw.AddNode(sig(m.Root), fanins, cov)
	}
	for cname := range needConst {
		if cname == "$const1" {
			nw.AddNode(cname, nil, cube.Universal(0))
		} else {
			nw.AddNode(cname, nil, cube.NewCover(0))
		}
	}
	// Outputs: alias the mapped roots under their original names.
	for _, out := range outputs {
		root, ok := s.Roots[out]
		if !ok {
			return nil, fmt.Errorf("techmap: no root for output %q", out)
		}
		src := sig(root)
		nw.AddOutput(out)
		if src == out {
			continue
		}
		// Buffer node under the output name.
		buf := cube.NewCover(1)
		c := cube.NewCube(1)
		c[0] = cube.Pos
		buf.Add(c)
		if src == "$const0" || src == "$const1" {
			needConst[src] = true
			if nw.Nodes[src] == nil {
				if src == "$const1" {
					nw.AddNode(src, nil, cube.Universal(0))
				} else {
					nw.AddNode(src, nil, cube.NewCover(0))
				}
			}
		}
		nw.AddNode(out, []string{src}, buf)
	}
	if err := nw.Check(); err != nil {
		return nil, err
	}
	return nw, nil
}

// patternCover enumerates the gate pattern's truth table over its
// pins and returns the SOP cover of the on-set.
func patternCover(p *Pattern, pins int) (*cube.Cover, error) {
	if got := p.Pins(); got != pins {
		return nil, fmt.Errorf("pattern has %d pins, match lists %d leaves", got, pins)
	}
	if pins > 8 {
		return nil, fmt.Errorf("pattern with %d pins too wide", pins)
	}
	cov := cube.NewCover(pins)
	vals := make([]bool, pins)
	for m := 0; m < 1<<uint(pins); m++ {
		for i := range vals {
			vals[i] = m&(1<<uint(i)) != 0
		}
		idx := 0
		if evalPattern(p, vals, &idx) {
			c := cube.NewCube(pins)
			for i, v := range vals {
				if v {
					c[i] = cube.Pos
				} else {
					c[i] = cube.Neg
				}
			}
			cov.Add(c)
		}
	}
	return cov, nil
}
