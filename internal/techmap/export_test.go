package techmap

import (
	"testing"

	"vlsicad/internal/bench"
	"vlsicad/internal/netlist"
)

func TestToNetworkEquivalentToSource(t *testing.T) {
	for _, obj := range []Objective{MinArea, MinDelay} {
		s, nw := subject(t, adderBLIF)
		res, err := Map(s, StandardLibrary(), obj)
		if err != nil {
			t.Fatal(err)
		}
		mapped, err := ToNetwork(s, res, StandardLibrary(), "mapped", nw.Inputs, nw.Outputs)
		if err != nil {
			t.Fatal(err)
		}
		eq, err := netlist.EquivalentBDD(nw, mapped)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("objective %v: mapped netlist not equivalent to source", obj)
		}
		eq2, witness, err := netlist.EquivalentSAT(nw, mapped)
		if err != nil {
			t.Fatal(err)
		}
		if !eq2 {
			t.Fatalf("objective %v: SAT check failed (witness %v)", obj, witness)
		}
	}
}

func TestToNetworkWithConstants(t *testing.T) {
	src := `
.model c
.inputs a
.outputs f
.names one
1
.names a one f
11 1
.end
`
	s, nw := subject(t, src)
	res, err := Map(s, StandardLibrary(), MinArea)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := ToNetwork(s, res, StandardLibrary(), "mc", nw.Inputs, nw.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := netlist.EquivalentBDD(nw, mapped)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("constant-carrying mapping not equivalent")
	}
}

func TestToNetworkFeedthrough(t *testing.T) {
	// Output driven directly by an input (after sweeping, the root is
	// the input leaf itself).
	src := `
.model ft
.inputs a b
.outputs f g
.names a f
1 1
.names a b g
11 1
.end
`
	s, nw := subject(t, src)
	res, err := Map(s, StandardLibrary(), MinArea)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := ToNetwork(s, res, StandardLibrary(), "ft2", nw.Inputs, nw.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := netlist.EquivalentBDD(nw, mapped)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("feedthrough mapping not equivalent")
	}
}

func TestToNetworkRandomNetworks(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		nw := bench.Network(bench.NetworkSpec{
			Name: "m", Inputs: 6, Nodes: 20, Outputs: 3,
		}, seed)
		s, err := FromNetwork(nw)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Map(s, StandardLibrary(), MinArea)
		if err != nil {
			t.Fatal(err)
		}
		mapped, err := ToNetwork(s, res, StandardLibrary(), "mm", nw.Inputs, nw.Outputs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		eq, witness, err := netlist.EquivalentSAT(nw, mapped)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("seed %d: mapping changed the function (witness %v)", seed, witness)
		}
	}
}

func TestPatternCoverWidthMismatch(t *testing.T) {
	if _, err := patternCover(pinv(pin()), 3); err == nil {
		t.Error("pin-count mismatch should fail")
	}
}
