package techmap

import (
	"math/rand"
	"testing"
)

// benchSubject builds a seeded random NAND2/INV DAG big enough that
// Map's per-node matching dominates: ~20 inputs and ~600 internal
// nodes with multi-fanout reconvergence, 8 roots.
func benchSubject(seed int64) *Subject {
	rng := rand.New(rand.NewSource(seed))
	s := NewSubject()
	var pool []int
	for i := 0; i < 20; i++ {
		pool = append(pool, s.Input(string(rune('a'+i%26))+string(rune('0'+i/26))))
	}
	for len(s.Nodes) < 600 {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		var id int
		if rng.Intn(4) == 0 {
			id = s.Inv(a)
		} else if a != b {
			id = s.Nand(a, b)
		} else {
			continue
		}
		pool = append(pool, id)
	}
	for i := 0; i < 8; i++ {
		s.Roots[string(rune('z'-i))] = pool[len(pool)-1-i]
	}
	s.Freeze()
	return s
}

// BenchmarkTechmapMap measures the tree-covering hot path the ROADMAP
// names (per-node DP with pattern matching over the full library).
func BenchmarkTechmapMap(b *testing.B) {
	s := benchSubject(7)
	lib := StandardLibrary()
	b.ReportAllocs()
	var area float64
	for i := 0; i < b.N; i++ {
		res, err := Map(s, lib, MinArea)
		if err != nil {
			b.Fatal(err)
		}
		area = res.Area
	}
	b.ReportMetric(area, "area")
}

// BenchmarkTechmapMapDelay exercises the MinDelay cost path over the
// same subject.
func BenchmarkTechmapMapDelay(b *testing.B) {
	s := benchSubject(7)
	lib := StandardLibrary()
	b.ReportAllocs()
	var delay float64
	for i := 0; i < b.N; i++ {
		res, err := Map(s, lib, MinDelay)
		if err != nil {
			b.Fatal(err)
		}
		delay = res.Delay
	}
	b.ReportMetric(delay, "delay")
}
