// Package techmap implements technology mapping by dynamic-programming
// tree covering — the course's Week-5 topic. A Boolean network is
// decomposed into a NAND2/INV subject graph, partitioned into trees at
// multi-fanout points, and each tree is covered with minimum-cost
// library-gate patterns (minimum area, or minimum delay).
package techmap

import (
	"fmt"
	"sort"

	"vlsicad/internal/cube"
	"vlsicad/internal/netlist"
)

// Kind is the subject-graph node type.
type Kind uint8

const (
	// KInput is a subject-graph leaf: a primary input or a constant.
	KInput Kind = iota
	// KInv is an inverter.
	KInv
	// KNand is a two-input NAND.
	KNand
)

// SNode is one subject-graph vertex.
type SNode struct {
	ID   int
	Kind Kind
	Name string // for KInput: the signal name
	A, B int    // child ids (A only for KInv)
}

// Subject is a NAND2/INV DAG with named roots (one per primary
// output).
type Subject struct {
	Nodes []SNode
	Roots map[string]int // output name -> node id
	// fanout counts, filled by Freeze.
	fanout []int
}

// NewSubject returns an empty subject graph.
func NewSubject() *Subject {
	return &Subject{Roots: map[string]int{}}
}

// Input adds (or reuses) an input leaf for the named signal.
func (s *Subject) Input(name string) int {
	for _, n := range s.Nodes {
		if n.Kind == KInput && n.Name == name {
			return n.ID
		}
	}
	id := len(s.Nodes)
	s.Nodes = append(s.Nodes, SNode{ID: id, Kind: KInput, Name: name})
	return id
}

// Inv adds an inverter over a, with structural hashing.
func (s *Subject) Inv(a int) int {
	for _, n := range s.Nodes {
		if n.Kind == KInv && n.A == a {
			return n.ID
		}
	}
	id := len(s.Nodes)
	s.Nodes = append(s.Nodes, SNode{ID: id, Kind: KInv, A: a})
	return id
}

// Nand adds a NAND2 over (a, b), with commutative structural hashing.
func (s *Subject) Nand(a, b int) int {
	if a > b {
		a, b = b, a
	}
	for _, n := range s.Nodes {
		if n.Kind == KNand && n.A == a && n.B == b {
			return n.ID
		}
	}
	id := len(s.Nodes)
	s.Nodes = append(s.Nodes, SNode{ID: id, Kind: KNand, A: a, B: b})
	return id
}

// And builds AND as INV(NAND(a,b)).
func (s *Subject) And(a, b int) int { return s.Inv(s.Nand(a, b)) }

// Or builds OR as NAND(INV(a), INV(b)).
func (s *Subject) Or(a, b int) int { return s.Nand(s.Inv(a), s.Inv(b)) }

// Freeze computes fanout counts (used for tree partitioning).
func (s *Subject) Freeze() {
	s.fanout = make([]int, len(s.Nodes))
	for _, n := range s.Nodes {
		switch n.Kind {
		case KInv:
			s.fanout[n.A]++
		case KNand:
			s.fanout[n.A]++
			s.fanout[n.B]++
		}
	}
	for _, r := range s.Roots {
		s.fanout[r]++ // outputs count as fanout
	}
}

// Fanout returns node id's fanout count (Freeze must have run).
func (s *Subject) Fanout(id int) int { return s.fanout[id] }

// Eval computes every node under the given input assignment. The
// constant leaves $const0/$const1 evaluate to themselves regardless of
// the assignment.
func (s *Subject) Eval(inputs map[string]bool) []bool {
	val := make([]bool, len(s.Nodes))
	for _, n := range s.Nodes {
		switch n.Kind {
		case KInput:
			val[n.ID] = leafValue(n.Name, inputs)
		case KInv:
			val[n.ID] = !val[n.A]
		case KNand:
			val[n.ID] = !(val[n.A] && val[n.B])
		}
	}
	return val
}

// FromNetwork decomposes a combinational network into a NAND2/INV
// subject graph. Each node's SOP becomes a product-of-cubes / sum tree
// built with balanced AND/OR reductions.
func FromNetwork(nw *netlist.Network) (*Subject, error) {
	s := NewSubject()
	order, err := nw.TopoSort()
	if err != nil {
		return nil, err
	}
	sig := map[string]int{}
	for _, in := range nw.Inputs {
		sig[in] = s.Input(in)
	}
	for _, n := range order {
		id, err := s.buildCover(n, sig)
		if err != nil {
			return nil, err
		}
		sig[n.Name] = id
	}
	for _, o := range nw.Outputs {
		id, ok := sig[o]
		if !ok {
			return nil, fmt.Errorf("techmap: output %s undriven", o)
		}
		s.Roots[o] = id
	}
	s.Freeze()
	return s, nil
}

func (s *Subject) buildCover(n *netlist.Node, sig map[string]int) (int, error) {
	if n.Cover.IsEmpty() {
		return s.constNode(false), nil
	}
	var terms []int
	for _, c := range n.Cover.Cubes {
		var lits []int
		for i, l := range c {
			child, ok := sig[n.Fanins[i]]
			if !ok {
				return 0, fmt.Errorf("techmap: node %s reads unknown signal %s", n.Name, n.Fanins[i])
			}
			switch l {
			case cube.Pos:
				lits = append(lits, child)
			case cube.Neg:
				lits = append(lits, s.Inv(child))
			case cube.Void:
				lits = nil
			}
		}
		if len(lits) == 0 {
			if c.IsUniversal() {
				return s.constNode(true), nil
			}
			continue
		}
		terms = append(terms, s.balanced(lits, s.And))
	}
	if len(terms) == 0 {
		return s.constNode(false), nil
	}
	return s.balanced(terms, s.Or), nil
}

// constNode models constants as a dedicated input leaf; mapping treats
// them as free leaves and the course netlists rarely need them.
func (s *Subject) constNode(v bool) int {
	if v {
		return s.Input("$const1")
	}
	return s.Input("$const0")
}

// leafValue resolves an input leaf, giving the constant leaves their
// fixed values.
func leafValue(name string, inputs map[string]bool) bool {
	switch name {
	case "$const1":
		return true
	case "$const0":
		return false
	default:
		return inputs[name]
	}
}

// balanced reduces ids pairwise with op to keep trees shallow.
func (s *Subject) balanced(ids []int, op func(a, b int) int) int {
	for len(ids) > 1 {
		var next []int
		for i := 0; i+1 < len(ids); i += 2 {
			next = append(next, op(ids[i], ids[i+1]))
		}
		if len(ids)%2 == 1 {
			next = append(next, ids[len(ids)-1])
		}
		ids = next
	}
	return ids[0]
}

// Stats returns counts by node kind.
func (s *Subject) Stats() (inputs, invs, nands int) {
	for _, n := range s.Nodes {
		switch n.Kind {
		case KInput:
			inputs++
		case KInv:
			invs++
		case KNand:
			nands++
		}
	}
	return
}

// InputNames lists the distinct leaf names, sorted.
func (s *Subject) InputNames() []string {
	var out []string
	for _, n := range s.Nodes {
		if n.Kind == KInput {
			out = append(out, n.Name)
		}
	}
	sort.Strings(out)
	return out
}
