# Standard pre-merge gate: `make check` must be green before merging.
GO ?= go
FUZZTIME ?= 10s

.PHONY: check vet build test race bench bench-record xcheck fuzz corpus chaos

check: vet build race xcheck fuzz bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Record the performance trajectory: run the hot-path benchmarks at a
# real benchtime and parse them into BENCH_FILE (see EXPERIMENTS.md
# for the format). Compare against the committed BENCH_PR*.json files
# to see drift across PRs.
BENCH_FILE ?= BENCH_PR6.json
BENCH_PKGS ?= ./internal/obs ./internal/portal ./internal/route ./internal/mooc
bench-record:
	$(GO) test -bench=. -benchmem -benchtime=0.5s -timeout 30m $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchrecord -out $(BENCH_FILE)

# Replay the golden differential-testing corpus (byte-identical
# regeneration + zero oracle mismatches).
xcheck:
	$(GO) test ./internal/xcheck -run Corpus -count=1

# Short fuzzing pass over the cross-engine oracles. Go runs one fuzz
# target per invocation, so each gets its own.
fuzz:
	$(GO) test ./internal/xcheck -run=^$$ -fuzz=FuzzCoverMinimize -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/xcheck -run=^$$ -fuzz=FuzzSATvsBDD -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/xcheck -run=^$$ -fuzz=FuzzRoute$$ -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/xcheck -run=^$$ -fuzz=FuzzPRoute -fuzztime=$(FUZZTIME)

# Regenerate testdata/xcheck from the pinned master seed.
corpus:
	$(GO) run ./cmd/xcheckgen -out testdata/xcheck

# Long seeded chaos sweep over the portal job pool (outside the
# default `make check` budget). Override the seed count with
# CHAOS_SEEDS=n.
CHAOS_SEEDS ?= 20
chaos:
	PORTAL_CHAOS=1 PORTAL_CHAOS_SEEDS=$(CHAOS_SEEDS) \
		$(GO) test -race ./internal/portal -run TestChaosSweep -count=1 -v -timeout 20m
