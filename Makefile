# Standard pre-merge gate: `make check` must be green before merging.
GO ?= go
FUZZTIME ?= 10s

.PHONY: check vet build test race bench bench-record bench-gate xcheck fuzz corpus chaos

check: vet build race xcheck fuzz bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Record the performance trajectory: run the hot-path benchmarks at a
# real benchtime and parse them into BENCH_FILE (see EXPERIMENTS.md
# for the format). Compare against the committed BENCH_PR*.json files
# to see drift across PRs.
BENCH_FILE ?= BENCH_PR10.json
BENCH_PKGS ?= ./internal/obs ./internal/portal ./internal/route ./internal/mooc ./internal/place ./internal/linsolve ./internal/techmap
BENCH_TIME ?= 0.5s
bench-record:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCH_TIME) -timeout 30m $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchrecord -out $(BENCH_FILE)

# Allocation-regression gate: re-measure the benchmarks and fail if
# any allocates more per op than the committed trajectory file records
# (ns/op is never gated — it moves with machine load; allocs/op is
# exact). The gate MUST use the same BENCH_TIME the baseline was
# recorded with: allocs/op includes sync.Pool warm-up amortized over
# the iteration count, so measuring at a different benchtime (say 1x)
# reports setup allocations as steady state and false-positives.
BENCH_BASELINE ?= $(BENCH_FILE)
bench-gate:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCH_TIME) -timeout 30m $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchrecord -compare $(BENCH_BASELINE)

# Replay the golden differential-testing corpus (byte-identical
# regeneration + zero oracle mismatches).
xcheck:
	$(GO) test ./internal/xcheck -run Corpus -count=1

# Short fuzzing pass over the cross-engine oracles. Go runs one fuzz
# target per invocation, so each gets its own.
fuzz:
	$(GO) test ./internal/xcheck -run=^$$ -fuzz=FuzzCoverMinimize -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/xcheck -run=^$$ -fuzz=FuzzSATvsBDD -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/xcheck -run=^$$ -fuzz=FuzzRoute$$ -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/xcheck -run=^$$ -fuzz=FuzzPRoute -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/xcheck -run=^$$ -fuzz=FuzzPAnneal -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/portal -run=^$$ -fuzz=FuzzJournalReplay -fuzztime=$(FUZZTIME)

# Regenerate testdata/xcheck from the pinned master seed.
corpus:
	$(GO) run ./cmd/xcheckgen -out testdata/xcheck

# Long seeded chaos sweeps over the portal job pool (outside the
# default `make check` budget): the mixed-fault storm, the hot-user
# fairness storm against the async ticket lifecycle, and the restart
# chaos sweep that crashes the ticket journal mid-record and recovers.
# Override the seed count with CHAOS_SEEDS=n.
CHAOS_SEEDS ?= 20
chaos:
	PORTAL_CHAOS=1 PORTAL_CHAOS_SEEDS=$(CHAOS_SEEDS) \
		$(GO) test -race ./internal/portal -run 'TestChaosSweep|TestChaosHotUserStormSweep|TestRestartChaosSweep' -count=1 -v -timeout 20m
