# Standard pre-merge gate: `make check` must be green before merging.
GO ?= go

.PHONY: check vet build test race bench

check: vet build race bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...
