package main

import (
	"strings"
	"testing"
)

func runEspresso(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

const majorityPLA = `.i 3
.o 1
111 1
110 1
101 1
011 1
.e
`

func TestEspressoMajority(t *testing.T) {
	code, out, errb := runEspresso(t, majorityPLA)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errb)
	}
	// Majority minimizes from 4 cubes to the 3 two-literal cubes.
	if !strings.Contains(out, "4 -> 3 cubes") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestEspressoErrors(t *testing.T) {
	if code, _, errb := runEspresso(t, "garbage"); code != 1 || !strings.Contains(errb, "espresso:") {
		t.Errorf("garbage input: code=%d stderr=%q", code, errb)
	}
}
