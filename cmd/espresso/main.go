// Command espresso minimizes a two-level PLA read from stdin (or a
// file argument) and writes the minimized PLA to stdout, with per-
// output statistics as comments — the MOOC's Espresso portal.
package main

import (
	"fmt"
	"io"
	"os"

	"vlsicad/internal/portal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	var src []byte
	var err error
	if len(args) > 0 {
		src, err = os.ReadFile(args[0])
	} else {
		src, err = io.ReadAll(stdin)
	}
	if err != nil {
		fmt.Fprintln(stderr, "espresso:", err)
		return 1
	}
	out, err := portal.EspressoTool().Run(string(src), make(chan struct{}))
	if err != nil {
		fmt.Fprintln(stderr, "espresso:", err)
		return 1
	}
	fmt.Fprint(stdout, out)
	return 0
}
