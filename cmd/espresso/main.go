// Command espresso minimizes a two-level PLA read from stdin (or a
// file argument) and writes the minimized PLA to stdout, with per-
// output statistics as comments — the MOOC's Espresso portal.
package main

import (
	"fmt"
	"io"
	"os"

	"vlsicad/internal/portal"
)

func main() {
	var src []byte
	var err error
	if len(os.Args) > 1 {
		src, err = os.ReadFile(os.Args[1])
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "espresso:", err)
		os.Exit(1)
	}
	out, err := portal.EspressoTool().Run(string(src), make(chan struct{}))
	if err != nil {
		fmt.Fprintln(os.Stderr, "espresso:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
