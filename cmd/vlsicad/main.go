// Command vlsicad runs the complete logic-to-layout flow on a BLIF
// network (stdin or file argument): synthesis, formal verification,
// technology mapping, placement, routing and static timing, printing
// a one-screen summary.
//
// Telemetry: -stats appends the per-stage timing table and the
// metrics/span snapshot; -json replaces the summary with a
// machine-readable snapshot (flow results + full telemetry). With
// -drc, design-rule violations make the exit code nonzero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"vlsicad"
	"vlsicad/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vlsicad", flag.ContinueOnError)
	fs.SetOutput(stderr)
	wire := fs.Bool("wire", false, "include Elmore wire delays in timing")
	checkDRC := fs.Bool("drc", false, "design-rule-check the routed wires (violations exit nonzero)")
	seed := fs.Int64("seed", 1, "seed for randomized stages")
	workers := fs.Int("workers", 0, "routing and placement workers (0 = GOMAXPROCS, 1 = serial; result is identical either way)")
	placeWorkers := fs.Int("place-workers", 0, "placement workers; overrides -workers for the place stage (0 = inherit)")
	annealPlace := fs.Bool("anneal-place", false, "refine the legalized placement with parallel simulated annealing")
	stats := fs.Bool("stats", false, "print the per-stage timing table and telemetry snapshot")
	jsonOut := fs.Bool("json", false, "emit a machine-readable JSON snapshot instead of text")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, "vlsicad:", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	ob := obs.NewObserver(nil)
	pw := *placeWorkers
	if pw <= 0 {
		pw = *workers
	}
	flow, err := vlsicad.RunFlow(in, vlsicad.FlowOpts{
		WireModel: *wire, Seed: *seed, CheckDRC: *checkDRC, Obs: ob,
		RouteWorkers: *workers,
		AnnealPlace:  *annealPlace, PlaceWorkers: pw,
	})
	if err != nil {
		fmt.Fprintln(stderr, "vlsicad:", err)
		return 1
	}

	if *jsonOut {
		out := struct {
			Model          string                `json:"model"`
			LiteralsBefore int                   `json:"literals_before"`
			LiteralsAfter  int                   `json:"literals_after"`
			Equivalent     bool                  `json:"equivalent"`
			Gates          int                   `json:"gates"`
			Area           float64               `json:"area"`
			HPWL           float64               `json:"hpwl"`
			RoutedNets     int                   `json:"routed_nets"`
			TotalNets      int                   `json:"total_nets"`
			WireLength     int                   `json:"wirelength"`
			Vias           int                   `json:"vias"`
			DRCViolations  int                   `json:"drc_violations"`
			CriticalDelay  float64               `json:"critical_delay"`
			CriticalPath   []string              `json:"critical_path,omitempty"`
			Stages         []vlsicad.StageTiming `json:"stages"`
			Telemetry      obs.Snapshot          `json:"telemetry"`
		}{
			Model:          flow.Source.Name,
			LiteralsBefore: flow.LiteralsBefore,
			LiteralsAfter:  flow.LiteralsAfter,
			Equivalent:     flow.Equivalent,
			Gates:          len(flow.Mapping.Matches),
			Area:           flow.Area,
			HPWL:           flow.HPWL,
			RoutedNets:     len(flow.Routing.Paths),
			TotalNets:      len(flow.Nets),
			WireLength:     flow.WireLength,
			Vias:           flow.Vias,
			DRCViolations:  len(flow.DRC),
			CriticalDelay:  flow.CriticalDelay,
			CriticalPath:   flow.Timing.CriticalPath,
			Stages:         flow.Stages,
			Telemetry:      ob.Snapshot(),
		}
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "vlsicad:", err)
			return 1
		}
		fmt.Fprintln(stdout, string(b))
	} else {
		fmt.Fprintf(stdout, "model          : %s\n", flow.Source.Name)
		fmt.Fprintf(stdout, "synthesis      : %d -> %d SOP literals (verified equivalent: %v)\n",
			flow.LiteralsBefore, flow.LiteralsAfter, flow.Equivalent)
		fmt.Fprintf(stdout, "mapping        : %d gates, area %.1f\n", len(flow.Mapping.Matches), flow.Area)
		fmt.Fprintf(stdout, "placement      : %d cells on %gx%g, HPWL %.1f\n",
			flow.PlaceProblem.NCells, flow.PlaceProblem.W, flow.PlaceProblem.H, flow.HPWL)
		fmt.Fprintf(stdout, "routing        : %d/%d nets, wirelength %d, vias %d\n",
			len(flow.Routing.Paths), len(flow.Nets), flow.WireLength, flow.Vias)
		if *checkDRC {
			fmt.Fprintf(stdout, "drc            : %d violations\n", len(flow.DRC))
			for i, v := range flow.DRC {
				if i >= 5 {
					fmt.Fprintln(stdout, "  ...")
					break
				}
				fmt.Fprintf(stdout, "  %s\n", v)
			}
		}
		fmt.Fprintf(stdout, "timing         : critical delay %.2f\n", flow.CriticalDelay)
		fmt.Fprintf(stdout, "critical path  : %v\n", flow.Timing.CriticalPath)
		if *stats {
			fmt.Fprintf(stdout, "\n=== stage timings ===\n%s", flow.StageTable())
			fmt.Fprintln(stdout, "\n=== telemetry ===")
			ob.Snapshot().WriteText(stdout)
		}
	}
	if *checkDRC && len(flow.DRC) > 0 {
		fmt.Fprintf(stderr, "vlsicad: %d DRC violations\n", len(flow.DRC))
		return 3
	}
	return 0
}
