// Command vlsicad runs the complete logic-to-layout flow on a BLIF
// network (stdin or file argument): synthesis, formal verification,
// technology mapping, placement, routing and static timing, printing
// a one-screen summary.
package main

import (
	"flag"
	"fmt"
	"os"

	"vlsicad"
)

func main() {
	wire := flag.Bool("wire", false, "include Elmore wire delays in timing")
	checkDRC := flag.Bool("drc", false, "design-rule-check the routed wires")
	seed := flag.Int64("seed", 1, "seed for randomized stages")
	flag.Parse()

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "vlsicad:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	flow, err := vlsicad.RunFlow(in, vlsicad.FlowOpts{WireModel: *wire, Seed: *seed, CheckDRC: *checkDRC})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vlsicad:", err)
		os.Exit(1)
	}
	fmt.Printf("model          : %s\n", flow.Source.Name)
	fmt.Printf("synthesis      : %d -> %d SOP literals (verified equivalent: %v)\n",
		flow.LiteralsBefore, flow.LiteralsAfter, flow.Equivalent)
	fmt.Printf("mapping        : %d gates, area %.1f\n", len(flow.Mapping.Matches), flow.Area)
	fmt.Printf("placement      : %d cells on %gx%g, HPWL %.1f\n",
		flow.PlaceProblem.NCells, flow.PlaceProblem.W, flow.PlaceProblem.H, flow.HPWL)
	fmt.Printf("routing        : %d/%d nets, wirelength %d, vias %d\n",
		len(flow.Routing.Paths), len(flow.Nets), flow.WireLength, flow.Vias)
	if *checkDRC {
		fmt.Printf("drc            : %d violations\n", len(flow.DRC))
		for i, v := range flow.DRC {
			if i >= 5 {
				fmt.Println("  ...")
				break
			}
			fmt.Printf("  %s\n", v)
		}
	}
	fmt.Printf("timing         : critical delay %.2f\n", flow.CriticalDelay)
	fmt.Printf("critical path  : %v\n", flow.Timing.CriticalPath)
}
