package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const adderBLIF = `.model adder
.inputs a b cin
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
`

func runVLSI(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestFlowSummary(t *testing.T) {
	code, out, errb := runVLSI(t, adderBLIF)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errb)
	}
	for _, want := range []string{
		"model          : adder",
		"verified equivalent: true",
		"routing",
		"timing",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestFlowJSON(t *testing.T) {
	code, out, errb := runVLSI(t, adderBLIF, "-json")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errb)
	}
	var snap struct {
		Model      string `json:"model"`
		Equivalent bool   `json:"equivalent"`
		RoutedNets int    `json:"routed_nets"`
		TotalNets  int    `json:"total_nets"`
	}
	if err := json.Unmarshal([]byte(out), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if snap.Model != "adder" || !snap.Equivalent {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap.RoutedNets != snap.TotalNets {
		t.Errorf("unrouted nets: %d/%d", snap.RoutedNets, snap.TotalNets)
	}
}

// TestFlowAnnealPlaceWorkersInvariant: -anneal-place refines the
// placement and the summary line is identical for every -workers
// value (chains fix the result; workers only bound concurrency).
func TestFlowAnnealPlaceWorkersInvariant(t *testing.T) {
	placementLine := func(out string) string {
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, "placement") {
				return l
			}
		}
		t.Fatalf("no placement line in:\n%s", out)
		return ""
	}
	code, ref, errb := runVLSI(t, adderBLIF, "-anneal-place", "-workers", "1", "-seed", "3")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errb)
	}
	for _, w := range []string{"2", "0"} {
		code, out, errb := runVLSI(t, adderBLIF, "-anneal-place", "-workers", w, "-seed", "3")
		if code != 0 {
			t.Fatalf("workers=%s: code=%d stderr=%q", w, code, errb)
		}
		if placementLine(out) != placementLine(ref) {
			t.Errorf("workers=%s placement differs:\n%s\nvs\n%s", w, placementLine(out), placementLine(ref))
		}
	}
}

func TestFlowErrors(t *testing.T) {
	if code, _, errb := runVLSI(t, "not a blif file"); code != 1 || !strings.Contains(errb, "vlsicad:") {
		t.Errorf("garbage input: code=%d stderr=%q", code, errb)
	}
	if code, _, _ := runVLSI(t, adderBLIF, "-no-such-flag"); code != 2 {
		t.Errorf("bad flag: code=%d, want 2", code)
	}
	if code, _, _ := runVLSI(t, "", "/no/such/file.blif"); code != 1 {
		t.Errorf("missing file: code=%d, want 1", code)
	}
}
