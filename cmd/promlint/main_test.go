package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRun(t *testing.T) {
	var stderr bytes.Buffer
	ok := "# TYPE jobs_total counter\njobs_total{tool=\"kbdd\"} 5\n"
	if code := run(strings.NewReader(ok), &stderr); code != 0 {
		t.Errorf("valid page rejected: %s", stderr.String())
	}
	stderr.Reset()
	bad := "jobs_total{tool=kbdd} 5\n"
	if code := run(strings.NewReader(bad), &stderr); code == 0 {
		t.Error("malformed page accepted")
	}
	if !strings.Contains(stderr.String(), "promlint:") {
		t.Errorf("stderr = %q", stderr.String())
	}
}
