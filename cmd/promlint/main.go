// Command promlint validates a Prometheus text-format page on stdin
// (exposition format 0.0.4) and exits non-zero on the first malformed
// line — the checker the nightly scrape drill pipes a live /metrics
// page through.
//
// Usage:
//
//	curl -fs http://127.0.0.1:9187/metrics | promlint
package main

import (
	"fmt"
	"io"
	"os"

	"vlsicad/internal/obs"
)

func main() {
	os.Exit(run(os.Stdin, os.Stderr))
}

func run(stdin io.Reader, stderr io.Writer) int {
	if err := obs.ValidateExposition(stdin); err != nil {
		fmt.Fprintf(stderr, "promlint: %v\n", err)
		return 1
	}
	return 0
}
