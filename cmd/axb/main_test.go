package main

import (
	"strings"
	"testing"
)

func TestAxbSolvesSystem(t *testing.T) {
	// 2x2 symmetric positive-definite system: x = (1, 1).
	var out, errb strings.Builder
	code := run(nil, strings.NewReader("2 dense\n2 -1\n-1 2\n1 1\n"), &out, &errb)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errb.String())
	}
	if !strings.Contains(out.String(), "x1 = 1") || !strings.Contains(out.String(), "x2 = 1") {
		t.Fatalf("output = %q, want x1 = 1 and x2 = 1", out.String())
	}
}

func TestAxbBadInput(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, strings.NewReader("not a system\n"), &out, &errb); code != 1 {
		t.Fatalf("code=%d, want 1 (stderr=%q)", code, errb.String())
	}
	if errb.Len() == 0 {
		t.Fatal("no error message on stderr")
	}
}

func TestAxbMissingFile(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"/nonexistent/axb-input"}, strings.NewReader(""), &out, &errb); code != 1 {
		t.Fatalf("code=%d, want 1", code)
	}
}
