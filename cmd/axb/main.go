// Command axb solves a linear system Ax=b for the quadratic-placement
// homeworks. Input (stdin or file argument): a header line
// "n [dense|cg|gs|jacobi]", then n rows of n coefficients, then the n
// right-hand-side values.
package main

import (
	"fmt"
	"io"
	"os"

	"vlsicad/internal/portal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "axb:", err)
		return 1
	}
	var src []byte
	var err error
	if len(args) > 0 {
		src, err = os.ReadFile(args[0])
	} else {
		src, err = io.ReadAll(stdin)
	}
	if err != nil {
		return fail(err)
	}
	out, err := portal.AxbTool().Run(string(src), make(chan struct{}))
	if err != nil {
		return fail(err)
	}
	fmt.Fprint(stdout, out)
	return 0
}
