// Command axb solves a linear system Ax=b for the quadratic-placement
// homeworks. Input (stdin or file argument): a header line
// "n [dense|cg|gs|jacobi]", then n rows of n coefficients, then the n
// right-hand-side values.
package main

import (
	"fmt"
	"io"
	"os"

	"vlsicad/internal/portal"
)

func main() {
	var src []byte
	var err error
	if len(os.Args) > 1 {
		src, err = os.ReadFile(os.Args[1])
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "axb:", err)
		os.Exit(1)
	}
	out, err := portal.AxbTool().Run(string(src), make(chan struct{}))
	if err != nil {
		fmt.Fprintln(os.Stderr, "axb:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
