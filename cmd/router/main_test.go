package main

import (
	"strings"
	"testing"
)

func TestRouterBattery(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-battery"}, strings.NewReader(""), &out, &errb)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errb.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Fatalf("battery output = %q, want PASS lines", out.String())
	}
}

func TestRouterCase(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-case", "fract"}, strings.NewReader(""), &out, &errb)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errb.String())
	}
	if !strings.Contains(out.String(), "completion=") {
		t.Fatalf("output = %q, want completion summary", out.String())
	}
}

func TestRouterErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-case", "nope"}, strings.NewReader(""), &out, &errb); code != 1 {
		t.Fatalf("unknown case: code=%d, want 1", code)
	}
	if code := run([]string{"-bogus"}, strings.NewReader(""), &out, &errb); code != 2 {
		t.Fatalf("bad flag: code=%d, want 2", code)
	}
}
