// Command router runs the two-layer maze router: either the Figure 6
// unit-test battery (-battery) or a full MCNC-style benchmark case,
// reporting completion rate, wirelength and via counts, with an
// optional ASCII rendering of a layer.
//
// Usage:
//
//	router -battery
//	router -case fract [-seed N] [-render 0|1]
package main

import (
	"flag"
	"fmt"
	"os"

	"vlsicad/internal/bench"
	"vlsicad/internal/grader"
	"vlsicad/internal/place"
	"vlsicad/internal/route"
)

func main() {
	battery := flag.Bool("battery", false, "run the Figure 6 router unit-test battery")
	global := flag.Bool("global", false, "run coarse global routing and print the congestion map")
	caseName := flag.String("case", "fract", "benchmark case")
	seed := flag.Int64("seed", 1, "seed")
	render := flag.Int("render", -1, "render this layer as ASCII after routing")
	flag.Parse()

	if *battery {
		rep := grader.RunRouterBattery(grader.ReferenceRouter)
		fmt.Print(rep)
		return
	}
	var c *bench.Case
	for _, bc := range bench.Suite() {
		if bc.Name == *caseName {
			cc := bc
			c = &cc
			break
		}
	}
	if c == nil {
		fmt.Fprintf(os.Stderr, "router: unknown case %q\n", *caseName)
		os.Exit(1)
	}
	p := bench.Placement(*c, *seed)
	pl, err := place.Quadratic(p, place.QuadraticOpts{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "router:", err)
		os.Exit(1)
	}
	legal, err := place.Legalize(p, pl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "router:", err)
		os.Exit(1)
	}
	g, nets := bench.Routing(*c, legal, p, *seed, 0.02)
	if *global {
		// Coarse grid: one GCell per 5x5 detailed cells, capacity 6.
		gg := route.NewGGrid(g.W/5+1, g.H/5+1, 6)
		coarse := make([]route.Net, len(nets))
		for i, n := range nets {
			coarse[i] = route.Net{Name: n.Name,
				A: route.Point{X: n.A.X / 5, Y: n.A.Y / 5},
				B: route.Point{X: n.B.X / 5, Y: n.B.Y / 5}}
		}
		gres := gg.GlobalRoute(coarse)
		fmt.Printf("global route: %s\n", gres)
		fmt.Print(gg.CongestionMap())
		return
	}
	res := route.RouteAll(g, nets, route.Opts{
		Alg: route.AStar, Order: route.OrderShortFirst, RipupRounds: 5, Seed: *seed,
	})
	fmt.Printf("case=%s grid=%dx%d nets=%d routed=%d failed=%d completion=%.1f%% wirelength=%d vias=%d\n",
		c.Name, g.W, g.H, len(nets), len(res.Paths), len(res.Failed),
		100*float64(len(res.Paths))/float64(len(nets)), res.Length, res.Vias)
	if *render >= 0 && *render < route.Layers {
		fmt.Print(route.Render(g, *render, res.Paths))
	}
}
