// Command router runs the two-layer maze router: either the Figure 6
// unit-test battery (-battery) or a full MCNC-style benchmark case,
// reporting completion rate, wirelength and via counts, with an
// optional ASCII rendering of a layer.
//
// Usage:
//
//	router -battery
//	router -case fract [-seed N] [-render 0|1]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"vlsicad/internal/bench"
	"vlsicad/internal/grader"
	"vlsicad/internal/place"
	"vlsicad/internal/route"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("router", flag.ContinueOnError)
	fs.SetOutput(stderr)
	battery := fs.Bool("battery", false, "run the Figure 6 router unit-test battery")
	global := fs.Bool("global", false, "run coarse global routing and print the congestion map")
	caseName := fs.String("case", "fract", "benchmark case")
	seed := fs.Int64("seed", 1, "seed")
	workers := fs.Int("workers", 0, "routing workers (0 = GOMAXPROCS, 1 = serial; result is identical either way)")
	render := fs.Int("render", -1, "render this layer as ASCII after routing")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "router:", err)
		return 1
	}

	if *battery {
		fmt.Fprint(stdout, grader.RunRouterBattery(grader.ReferenceRouter))
		return 0
	}
	var c *bench.Case
	for _, bc := range bench.Suite() {
		if bc.Name == *caseName {
			cc := bc
			c = &cc
			break
		}
	}
	if c == nil {
		return fail(fmt.Errorf("unknown case %q", *caseName))
	}
	p := bench.Placement(*c, *seed)
	pl, err := place.Quadratic(p, place.QuadraticOpts{})
	if err != nil {
		return fail(err)
	}
	legal, err := place.Legalize(p, pl)
	if err != nil {
		return fail(err)
	}
	g, nets := bench.Routing(*c, legal, p, *seed, 0.02)
	if *global {
		// Coarse grid: one GCell per 5x5 detailed cells, capacity 6.
		gg := route.NewGGrid(g.W/5+1, g.H/5+1, 6)
		coarse := make([]route.Net, len(nets))
		for i, n := range nets {
			coarse[i] = route.Net{Name: n.Name,
				A: route.Point{X: n.A.X / 5, Y: n.A.Y / 5},
				B: route.Point{X: n.B.X / 5, Y: n.B.Y / 5}}
		}
		gres := gg.GlobalRoute(coarse)
		fmt.Fprintf(stdout, "global route: %s\n", gres)
		fmt.Fprint(stdout, gg.CongestionMap())
		return 0
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	waves, conflicts := 0, 0
	res := route.RouteAll(g, nets, route.Opts{
		Alg: route.AStar, Order: route.OrderShortFirst, RipupRounds: 5, Seed: *seed,
		Workers: w,
		OnWave:  func(ws route.WaveStats) { waves++; conflicts += ws.Conflicts },
	})
	fmt.Fprintf(stdout, "case=%s grid=%dx%d nets=%d routed=%d failed=%d completion=%.1f%% wirelength=%d vias=%d\n",
		c.Name, g.W, g.H, len(nets), len(res.Paths), len(res.Failed),
		100*float64(len(res.Paths))/float64(len(nets)), res.Length, res.Vias)
	if w > 1 {
		fmt.Fprintf(stdout, "workers=%d waves=%d conflicts=%d\n", w, waves, conflicts)
	}
	if *render >= 0 && *render < route.Layers {
		fmt.Fprint(stdout, route.Render(g, *render, res.Paths))
	}
	return 0
}
