package main

import (
	"strings"
	"testing"
)

func runURP(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestURPTautology(t *testing.T) {
	code, out, _ := runURP(t, "1-\n0-\n", "tautology")
	if code != 0 || strings.TrimSpace(out) != "yes" {
		t.Fatalf("code=%d out=%q", code, out)
	}
	code, out, _ = runURP(t, "11\n", "tautology")
	if code != 0 || strings.TrimSpace(out) != "no" {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestURPComplement(t *testing.T) {
	// f = a; complement is a'.
	code, out, _ := runURP(t, "1-\n", "complement")
	if code != 0 || strings.TrimSpace(out) != "0-" {
		t.Fatalf("code=%d out=%q", code, out)
	}
	// Tautology complements to the empty cover.
	code, out, _ = runURP(t, "1-\n0-\n", "complement")
	if code != 0 || !strings.Contains(out, "empty cover") {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestURPCountAndCofactor(t *testing.T) {
	// |11-| + |--1| - |111| = 2 + 4 - 1 = 5 minterms.
	code, out, _ := runURP(t, "11-\n--1\n", "count")
	if code != 0 || strings.TrimSpace(out) != "5" {
		t.Fatalf("count: code=%d out=%q", code, out)
	}
	code, out, _ = runURP(t, "11\n01\n", "cofactor", "2", "1")
	if code != 0 {
		t.Fatalf("cofactor: code=%d out=%q", code, out)
	}
	// f|b=1 = a + a' = tautology over the remaining space.
	code, out2, _ := runURP(t, out, "tautology")
	if code != 0 || strings.TrimSpace(out2) != "yes" {
		t.Fatalf("cofactor result not tautology: %q -> %q", out, out2)
	}
}

func TestURPErrors(t *testing.T) {
	if code, _, _ := runURP(t, ""); code != 2 {
		t.Errorf("no subcommand: code=%d, want 2", code)
	}
	if code, _, errb := runURP(t, "", "tautology"); code != 1 || !strings.Contains(errb, "empty cover") {
		t.Errorf("empty stdin: code=%d stderr=%q", code, errb)
	}
	if code, _, _ := runURP(t, "1z\n", "tautology"); code != 1 {
		t.Errorf("bad cover: code=%d, want 1", code)
	}
	if code, _, _ := runURP(t, "11\n", "cofactor", "9", "1"); code != 1 {
		t.Errorf("bad var index: code=%d, want 1", code)
	}
	if code, _, _ := runURP(t, "11\n", "frobnicate"); code != 2 {
		t.Errorf("unknown subcommand: code=%d, want 2", code)
	}
}
