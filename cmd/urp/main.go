// Command urp is the Project 1 tool: Unate-Recursive-Paradigm
// operations on positional-cube-notation covers. The cover is read
// from stdin, one cube per line in 0/1/- notation.
//
// Usage:
//
//	urp complement            print the complement cover
//	urp tautology             print yes/no
//	urp cofactor <var> <0|1>  print the Shannon cofactor (1-based var)
//	urp count                 print the number of minterms
package main

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"vlsicad/internal/cube"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	input, err := io.ReadAll(os.Stdin)
	if err != nil {
		fatal(err)
	}
	var rows []string
	for _, line := range strings.Split(string(input), "\n") {
		line = strings.TrimSpace(line)
		if line != "" && !strings.HasPrefix(line, "#") {
			rows = append(rows, line)
		}
	}
	if len(rows) == 0 {
		fatal(fmt.Errorf("empty cover on stdin"))
	}
	f, err := cube.ParseCover(rows)
	if err != nil {
		fatal(err)
	}
	switch os.Args[1] {
	case "complement":
		printCover(f.Complement())
	case "tautology":
		if f.IsTautology() {
			fmt.Println("yes")
		} else {
			fmt.Println("no")
		}
	case "cofactor":
		if len(os.Args) != 4 {
			usage()
		}
		v, err := strconv.Atoi(os.Args[2])
		if err != nil || v < 1 || v > f.N {
			fatal(fmt.Errorf("variable must be 1..%d", f.N))
		}
		phase := os.Args[3] == "1"
		printCover(f.Cofactor(v-1, phase))
	case "count":
		if f.N > 24 {
			fatal(fmt.Errorf("count limited to 24 variables"))
		}
		fmt.Println(len(f.Minterms()))
	default:
		usage()
	}
}

func printCover(f *cube.Cover) {
	if f.IsEmpty() {
		fmt.Println("# empty cover (constant 0)")
		return
	}
	for _, c := range f.Cubes {
		row := make([]byte, len(c))
		for i, l := range c {
			switch l {
			case cube.Pos:
				row[i] = '1'
			case cube.Neg:
				row[i] = '0'
			default:
				row[i] = '-'
			}
		}
		fmt.Println(string(row))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "urp:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: urp complement|tautology|count|cofactor <var> <0|1>  (cover on stdin)")
	os.Exit(2)
}
