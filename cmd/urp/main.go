// Command urp is the Project 1 tool: Unate-Recursive-Paradigm
// operations on positional-cube-notation covers. The cover is read
// from stdin, one cube per line in 0/1/- notation.
//
// Usage:
//
//	urp complement            print the complement cover
//	urp tautology             print yes/no
//	urp cofactor <var> <0|1>  print the Shannon cofactor (1-based var)
//	urp count                 print the number of minterms
package main

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"vlsicad/internal/cube"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "urp:", err)
		return 1
	}
	usage := func() int {
		fmt.Fprintln(stderr, "usage: urp complement|tautology|count|cofactor <var> <0|1>  (cover on stdin)")
		return 2
	}
	if len(args) < 1 {
		return usage()
	}
	input, err := io.ReadAll(stdin)
	if err != nil {
		return fail(err)
	}
	var rows []string
	for _, line := range strings.Split(string(input), "\n") {
		line = strings.TrimSpace(line)
		if line != "" && !strings.HasPrefix(line, "#") {
			rows = append(rows, line)
		}
	}
	if len(rows) == 0 {
		return fail(fmt.Errorf("empty cover on stdin"))
	}
	f, err := cube.ParseCover(rows)
	if err != nil {
		return fail(err)
	}
	switch args[0] {
	case "complement":
		printCover(stdout, f.Complement())
	case "tautology":
		if f.IsTautology() {
			fmt.Fprintln(stdout, "yes")
		} else {
			fmt.Fprintln(stdout, "no")
		}
	case "cofactor":
		if len(args) != 3 {
			return usage()
		}
		v, err := strconv.Atoi(args[1])
		if err != nil || v < 1 || v > f.N {
			return fail(fmt.Errorf("variable must be 1..%d", f.N))
		}
		phase := args[2] == "1"
		printCover(stdout, f.Cofactor(v-1, phase))
	case "count":
		if f.N > 24 {
			return fail(fmt.Errorf("count limited to 24 variables"))
		}
		fmt.Fprintln(stdout, len(f.Minterms()))
	default:
		return usage()
	}
	return 0
}

func printCover(w io.Writer, f *cube.Cover) {
	if f.IsEmpty() {
		fmt.Fprintln(w, "# empty cover (constant 0)")
		return
	}
	for _, c := range f.Cubes {
		row := make([]byte, len(c))
		for i, l := range c {
			switch l {
			case cube.Pos:
				row[i] = '1'
			case cube.Neg:
				row[i] = '0'
			default:
				row[i] = '-'
			}
		}
		fmt.Fprintln(w, string(row))
	}
}
