// Command sis runs the multi-level synthesis shell on a BLIF network:
// the input (stdin or a file argument) is the BLIF model followed by
// script commands (print_stats, sweep, simplify, full_simplify,
// eliminate N, fx, decomp, factor, print), one per line. The resulting
// network is printed as BLIF — the MOOC's SIS portal.
package main

import (
	"fmt"
	"io"
	"os"

	"vlsicad/internal/portal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	var src []byte
	var err error
	if len(args) > 0 {
		src, err = os.ReadFile(args[0])
	} else {
		src, err = io.ReadAll(stdin)
	}
	if err != nil {
		fmt.Fprintln(stderr, "sis:", err)
		return 1
	}
	out, err := portal.SISTool().Run(string(src), make(chan struct{}))
	fmt.Fprint(stdout, out)
	if err != nil {
		fmt.Fprintln(stderr, "sis:", err)
		return 1
	}
	return 0
}
