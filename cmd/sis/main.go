// Command sis runs the multi-level synthesis shell on a BLIF network:
// the input (stdin or a file argument) is the BLIF model followed by
// script commands (print_stats, sweep, simplify, full_simplify,
// eliminate N, fx, decomp, factor, print), one per line. The resulting
// network is printed as BLIF — the MOOC's SIS portal.
package main

import (
	"fmt"
	"io"
	"os"

	"vlsicad/internal/portal"
)

func main() {
	var src []byte
	var err error
	if len(os.Args) > 1 {
		src, err = os.ReadFile(os.Args[1])
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sis:", err)
		os.Exit(1)
	}
	out, err := portal.SISTool().Run(string(src), make(chan struct{}))
	fmt.Print(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sis:", err)
		os.Exit(1)
	}
}
