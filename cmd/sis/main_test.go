package main

import (
	"strings"
	"testing"
)

const sisInput = `.model m
.inputs a b
.outputs x
.names a b x
11 1
.end
print_stats
`

func TestSISPrintsNetwork(t *testing.T) {
	var out, errb strings.Builder
	code := run(nil, strings.NewReader(sisInput), &out, &errb)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errb.String())
	}
	if !strings.Contains(out.String(), ".model") {
		t.Fatalf("output = %q, want BLIF network", out.String())
	}
}

func TestSISBadInput(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, strings.NewReader("garbage\n"), &out, &errb); code != 1 {
		t.Fatalf("code=%d, want 1 (stderr=%q)", code, errb.String())
	}
}
