// Command placer runs the course placement algorithms on an
// MCNC-style synthetic benchmark and reports half-perimeter
// wirelength, optionally emitting the placement in the Project 3
// submission format.
//
// Usage:
//
//	placer -case fract -algo quadratic|anneal|random [-seed N] [-dump]
//	placer -case prim1 -algo anneal -chains 4 -workers 2
//	placer -case struct -algo quadratic -place-workers 4
//
// For -algo anneal, -chains fixes the number of independent annealing
// chains (the best result wins) and -workers bounds how many run
// concurrently: the placement depends only on -seed and -chains, never
// on -workers. For -algo quadratic, -place-workers bounds how many
// regions of one bipartition level solve concurrently — like -workers,
// it never changes the placement.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vlsicad/internal/bench"
	"vlsicad/internal/place"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("placer", flag.ContinueOnError)
	fs.SetOutput(stderr)
	caseName := fs.String("case", "fract", "benchmark case (fract, prim1, struct, prim2)")
	algo := fs.String("algo", "quadratic", "placement algorithm: quadratic, mincut, anneal, random")
	seed := fs.Int64("seed", 1, "instance and algorithm seed")
	chains := fs.Int("chains", 1, "anneal: independent chains (fixes the result)")
	workers := fs.Int("workers", 0, "anneal: concurrent chains, 0 = GOMAXPROCS (never changes the result)")
	placeWorkers := fs.Int("place-workers", 0, "quadratic: concurrent region solves per level, 0 = GOMAXPROCS (never changes the result)")
	dump := fs.Bool("dump", false, "print the placement (cell x y per line)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "placer:", err)
		return 1
	}

	var c *bench.Case
	for _, bc := range bench.Suite() {
		if bc.Name == *caseName {
			cc := bc
			c = &cc
			break
		}
	}
	if c == nil {
		return fail(fmt.Errorf("unknown case %q", *caseName))
	}
	p := bench.Placement(*c, *seed)

	var pl *place.Placement
	var err error
	switch *algo {
	case "quadratic":
		pl, err = place.Quadratic(p, place.QuadraticOpts{Workers: *placeWorkers})
		if err == nil {
			pl, err = place.Legalize(p, pl)
		}
	case "mincut":
		pl, err = place.MinCut(p, *seed)
		if err == nil {
			pl, err = place.Legalize(p, pl)
		}
	case "anneal":
		var res *place.AnnealResult
		res, err = place.Anneal(p, place.AnnealOpts{Seed: *seed, Chains: *chains, Workers: *workers})
		if err == nil {
			pl = res.Placement
		}
	case "random":
		pl = place.Random(p, *seed)
	default:
		return fail(fmt.Errorf("unknown algorithm %q", *algo))
	}
	if err != nil {
		return fail(err)
	}
	legal := "continuous"
	if e := place.CheckLegal(p, pl); e == nil {
		legal = "legal"
	}
	fmt.Fprintf(stdout, "case=%s cells=%d nets=%d algo=%s hpwl=%.1f (%s)\n",
		c.Name, p.NCells, len(p.Nets), *algo, p.HPWL(pl), legal)
	if *dump {
		for i := 0; i < p.NCells; i++ {
			fmt.Fprintf(stdout, "%d %g %g\n", i, pl.X[i], pl.Y[i])
		}
	}
	return 0
}
