// Command placer runs the course placement algorithms on an
// MCNC-style synthetic benchmark and reports half-perimeter
// wirelength, optionally emitting the placement in the Project 3
// submission format.
//
// Usage:
//
//	placer -case fract -algo quadratic|anneal|random [-seed N] [-dump]
package main

import (
	"flag"
	"fmt"
	"os"

	"vlsicad/internal/bench"
	"vlsicad/internal/place"
)

func main() {
	caseName := flag.String("case", "fract", "benchmark case (fract, prim1, struct, prim2)")
	algo := flag.String("algo", "quadratic", "placement algorithm: quadratic, mincut, anneal, random")
	seed := flag.Int64("seed", 1, "instance and algorithm seed")
	dump := flag.Bool("dump", false, "print the placement (cell x y per line)")
	flag.Parse()

	var c *bench.Case
	for _, bc := range bench.Suite() {
		if bc.Name == *caseName {
			cc := bc
			c = &cc
			break
		}
	}
	if c == nil {
		fmt.Fprintf(os.Stderr, "placer: unknown case %q\n", *caseName)
		os.Exit(1)
	}
	p := bench.Placement(*c, *seed)

	var pl *place.Placement
	var err error
	switch *algo {
	case "quadratic":
		pl, err = place.Quadratic(p, place.QuadraticOpts{})
		if err == nil {
			pl, err = place.Legalize(p, pl)
		}
	case "mincut":
		pl, err = place.MinCut(p, *seed)
		if err == nil {
			pl, err = place.Legalize(p, pl)
		}
	case "anneal":
		var res *place.AnnealResult
		res, err = place.Anneal(p, place.AnnealOpts{Seed: *seed})
		if err == nil {
			pl = res.Placement
		}
	case "random":
		pl = place.Random(p, *seed)
	default:
		fmt.Fprintf(os.Stderr, "placer: unknown algorithm %q\n", *algo)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "placer:", err)
		os.Exit(1)
	}
	legal := "continuous"
	if e := place.CheckLegal(p, pl); e == nil {
		legal = "legal"
	}
	fmt.Printf("case=%s cells=%d nets=%d algo=%s hpwl=%.1f (%s)\n",
		c.Name, p.NCells, len(p.Nets), *algo, p.HPWL(pl), legal)
	if *dump {
		for i := 0; i < p.NCells; i++ {
			fmt.Printf("%d %g %g\n", i, pl.X[i], pl.Y[i])
		}
	}
}
