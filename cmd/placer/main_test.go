package main

import (
	"strings"
	"testing"
)

func TestPlacerRandom(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-case", "fract", "-algo", "random", "-dump"},
		strings.NewReader(""), &out, &errb)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "case=fract") || !strings.Contains(s, "hpwl=") {
		t.Fatalf("output = %q, want case summary with hpwl", s)
	}
	if len(strings.Split(strings.TrimSpace(s), "\n")) < 2 {
		t.Fatalf("-dump emitted no placement rows: %q", s)
	}
}

// TestPlacerAnnealWorkersInvariant: the -workers knob bounds
// concurrency only — the full output (summary line and -dump rows) is
// identical for every value at fixed -seed and -chains.
func TestPlacerAnnealWorkersInvariant(t *testing.T) {
	runAnneal := func(workers string) string {
		var out, errb strings.Builder
		code := run([]string{"-case", "fract", "-algo", "anneal",
			"-seed", "7", "-chains", "3", "-workers", workers, "-dump"},
			strings.NewReader(""), &out, &errb)
		if code != 0 {
			t.Fatalf("workers=%s: code=%d stderr=%q", workers, code, errb.String())
		}
		return out.String()
	}
	ref := runAnneal("1")
	if !strings.Contains(ref, "algo=anneal") || !strings.Contains(ref, "(legal)") {
		t.Fatalf("output = %q, want a legal anneal summary", ref)
	}
	for _, w := range []string{"2", "4", "0"} {
		if got := runAnneal(w); got != ref {
			t.Errorf("workers=%s output differs from workers=1:\n%s\nvs\n%s", w, got, ref)
		}
	}
}

func TestPlacerErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-case", "nope"}, strings.NewReader(""), &out, &errb); code != 1 {
		t.Fatalf("unknown case: code=%d, want 1", code)
	}
	if code := run([]string{"-algo", "nope"}, strings.NewReader(""), &out, &errb); code != 1 {
		t.Fatalf("unknown algo: code=%d, want 1", code)
	}
	if code := run([]string{"-bogus"}, strings.NewReader(""), &out, &errb); code != 2 {
		t.Fatalf("bad flag: code=%d, want 2", code)
	}
}
