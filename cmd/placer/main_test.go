package main

import (
	"strings"
	"testing"
)

func TestPlacerRandom(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-case", "fract", "-algo", "random", "-dump"},
		strings.NewReader(""), &out, &errb)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "case=fract") || !strings.Contains(s, "hpwl=") {
		t.Fatalf("output = %q, want case summary with hpwl", s)
	}
	if len(strings.Split(strings.TrimSpace(s), "\n")) < 2 {
		t.Fatalf("-dump emitted no placement rows: %q", s)
	}
}

func TestPlacerErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-case", "nope"}, strings.NewReader(""), &out, &errb); code != 1 {
		t.Fatalf("unknown case: code=%d, want 1", code)
	}
	if code := run([]string{"-algo", "nope"}, strings.NewReader(""), &out, &errb); code != 1 {
		t.Fatalf("unknown algo: code=%d, want 1", code)
	}
	if code := run([]string{"-bogus"}, strings.NewReader(""), &out, &errb); code != 2 {
		t.Fatalf("bad flag: code=%d, want 2", code)
	}
}
