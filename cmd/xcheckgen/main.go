// Command xcheckgen deterministically (re)generates the golden
// differential-testing corpus under testdata/xcheck, and can sweep an
// arbitrary seed range through the cross-engine oracles.
//
// Usage:
//
//	xcheckgen [-seed N] [-out dir]          regenerate the corpus
//	xcheckgen -sweep COUNT [-start S]       run oracles on fresh seeds
//	xcheckgen -verify [-out dir]            replay the corpus in place
//
// The corpus is a pure function of the master seed: running xcheckgen
// twice with the same seed produces byte-identical files, which is
// exactly what `go test ./internal/xcheck -run Corpus` asserts.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vlsicad/internal/obs"
	"vlsicad/internal/xcheck"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xcheckgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Uint64("seed", xcheck.CorpusMasterSeed, "master seed the corpus derives from")
	out := fs.String("out", "testdata/xcheck", "corpus directory")
	verify := fs.Bool("verify", false, "replay the corpus instead of writing it")
	sweep := fs.Int("sweep", 0, "run the oracles on COUNT freshly generated seeds per domain (no files written)")
	start := fs.Uint64("start", 1, "first seed of a -sweep run")
	stats := fs.Bool("stats", false, "print the telemetry snapshot after a -verify or -sweep run")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ob := obs.NewObserver(nil)
	c := &xcheck.Checker{Obs: ob}

	switch {
	case *sweep > 0:
		bad := 0
		for _, d := range xcheck.DefaultSpec() {
			for s := *start; s < *start+uint64(*sweep); s++ {
				for _, m := range c.Check(d.Gen(s)) {
					fmt.Fprintln(stderr, m.Error())
					bad++
				}
			}
		}
		fmt.Fprintf(stdout, "swept %d domains × %d seeds: %d mismatches\n",
			len(xcheck.DefaultSpec()), *sweep, bad)
		if *stats {
			ob.Snapshot().WriteText(stdout)
		}
		if bad > 0 {
			return 1
		}
	case *verify:
		total, mismatches, err := c.VerifyCorpus(*out)
		if err != nil {
			fmt.Fprintln(stderr, "xcheckgen:", err)
			return 1
		}
		for _, m := range mismatches {
			fmt.Fprintln(stderr, m.Error())
		}
		fmt.Fprintf(stdout, "verified %d instances: %d mismatches\n", total, len(mismatches))
		if *stats {
			ob.Snapshot().WriteText(stdout)
		}
		if len(mismatches) > 0 {
			return 1
		}
	default:
		n, err := xcheck.WriteCorpus(*out, *seed, xcheck.DefaultSpec())
		if err != nil {
			fmt.Fprintln(stderr, "xcheckgen:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %d corpus files to %s (master seed %d)\n", n, *out, *seed)
	}
	return 0
}
