package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runGen(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestGenerateAndVerify(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	code, out, errb := runGen(t, "-out", dir)
	if code != 0 {
		t.Fatalf("generate: code=%d stderr=%q", code, errb)
	}
	if !strings.Contains(out, "wrote") {
		t.Fatalf("generate output: %q", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "MANIFEST")); err != nil {
		t.Fatal(err)
	}
	code, out, errb = runGen(t, "-verify", "-out", dir)
	if code != 0 {
		t.Fatalf("verify: code=%d stderr=%q", code, errb)
	}
	if !strings.Contains(out, "0 mismatches") {
		t.Fatalf("verify output: %q", out)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	if code, _, errb := runGen(t, "-out", dir); code != 0 {
		t.Fatalf("generate: stderr=%q", errb)
	}
	path := filepath.Join(dir, "cover-000.txt")
	if err := os.WriteFile(path, []byte("tampered\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runGen(t, "-verify", "-out", dir); code != 1 {
		t.Errorf("tampered corpus verified clean (code=%d)", code)
	}
}

func TestSweep(t *testing.T) {
	code, out, _ := runGen(t, "-sweep", "2", "-start", "5000", "-stats")
	if code != 0 {
		t.Fatalf("sweep: code=%d out=%q", code, out)
	}
	if !strings.Contains(out, "0 mismatches") {
		t.Fatalf("sweep output: %q", out)
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runGen(t, "-no-such-flag"); code != 2 {
		t.Errorf("bad flag: code=%d, want 2", code)
	}
}
