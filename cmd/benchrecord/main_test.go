package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: vlsicad/internal/obs
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCounterInc             	89308080	         6.045 ns/op	       0 B/op	       0 allocs/op
BenchmarkCounterVecWithInc-8    	36538740	        17.54 ns/op	       0 B/op	       0 allocs/op
BenchmarkWritePrometheus        	   22374	     53012 ns/op	   12144 B/op	     295 allocs/op
PASS
ok  	vlsicad/internal/obs	5.040s
goos: linux
goarch: amd64
pkg: vlsicad/internal/route
BenchmarkMazeRoute              	     100	    105000 ns/op
PASS
ok  	vlsicad/internal/route	1.2s
?   	vlsicad/cmd/grader	[no test files]
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc) != 4 {
		t.Fatalf("parsed %d benchmarks: %v", len(doc), doc)
	}
	r, ok := doc["vlsicad/internal/obs.BenchmarkCounterInc"]
	if !ok || r.NsPerOp != 6.045 || r.Iterations != 89308080 || r.AllocsPerOp != 0 {
		t.Errorf("CounterInc = %+v (present %v)", r, ok)
	}
	// GOMAXPROCS suffix stripped.
	r, ok = doc["vlsicad/internal/obs.BenchmarkCounterVecWithInc"]
	if !ok || r.NsPerOp != 17.54 {
		t.Errorf("CounterVecWithInc = %+v (present %v)", r, ok)
	}
	r, ok = doc["vlsicad/internal/obs.BenchmarkWritePrometheus"]
	if !ok || r.AllocedBytesPerOp != 12144 || r.AllocsPerOp != 295 {
		t.Errorf("WritePrometheus = %+v (present %v)", r, ok)
	}
	// ns/op-only lines (no -benchmem) still parse.
	r, ok = doc["vlsicad/internal/route.BenchmarkMazeRoute"]
	if !ok || r.NsPerOp != 105000 || r.AllocedBytesPerOp != 0 {
		t.Errorf("MazeRoute = %+v (present %v)", r, ok)
	}
}

func TestMarshalStable(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("marshal is not byte-stable")
	}
	// Valid JSON, keys sorted.
	var m map[string]BenchResult
	if err := json.Unmarshal(a, &m); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, a)
	}
	if len(m) != len(doc) {
		t.Errorf("round-trip lost entries: %d vs %d", len(m), len(doc))
	}
	lines := strings.Split(strings.TrimSpace(string(a)), "\n")
	var keys []string
	for _, l := range lines {
		if i := strings.Index(l, `"`); i >= 0 {
			j := strings.Index(l[i+1:], `"`)
			keys = append(keys, l[i+1:i+1+j])
		}
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Errorf("keys not sorted: %q before %q", keys[i-1], keys[i])
		}
	}
}

func TestRun(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-out", out}, strings.NewReader(sampleBenchOutput), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]BenchResult
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("file not JSON: %v", err)
	}
	if !strings.Contains(stdout.String(), "recorded 4 benchmarks") {
		t.Errorf("stdout = %q", stdout.String())
	}

	// No benchmarks on stdin is an error, not an empty file.
	stdout.Reset()
	stderr.Reset()
	if code := run(nil, strings.NewReader("PASS\nok x 1s\n"), &stdout, &stderr); code == 0 {
		t.Error("empty input should fail")
	}
}

func TestCompare(t *testing.T) {
	baseline := Document{
		"pkg.BenchmarkA":    {NsPerOp: 100, AllocsPerOp: 100},
		"pkg.BenchmarkB":    {NsPerOp: 100, AllocsPerOp: 0},
		"pkg.BenchmarkGone": {NsPerOp: 100, AllocsPerOp: 5},
	}
	current := Document{
		"pkg.BenchmarkA":   {NsPerOp: 500, AllocsPerOp: 105}, // within 10% — ns/op is never gated
		"pkg.BenchmarkB":   {NsPerOp: 100, AllocsPerOp: 1},   // +1 absolute slack
		"pkg.BenchmarkNew": {NsPerOp: 100, AllocsPerOp: 9999},
	}
	regs, checked := Compare(baseline, current, 0.10)
	if len(regs) != 0 || checked != 2 {
		t.Fatalf("clean compare: regs=%v checked=%d", regs, checked)
	}

	current["pkg.BenchmarkA"] = BenchResult{NsPerOp: 100, AllocsPerOp: 200}
	current["pkg.BenchmarkB"] = BenchResult{NsPerOp: 100, AllocsPerOp: 3}
	regs, _ = Compare(baseline, current, 0.10)
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions, got %v", regs)
	}
	// Sorted by name, with the numbers in the message.
	if !strings.Contains(regs[0], "BenchmarkA") || !strings.Contains(regs[0], "100 -> 200") {
		t.Errorf("regs[0] = %q", regs[0])
	}
	if !strings.Contains(regs[1], "BenchmarkB") {
		t.Errorf("regs[1] = %q", regs[1])
	}
}

func TestRunCompare(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "old.json")
	var stdout, stderr bytes.Buffer

	// Record a baseline from the sample output...
	if code := run([]string{"-out", old}, strings.NewReader(sampleBenchOutput), &stdout, &stderr); code != 0 {
		t.Fatalf("record: exit %d, stderr: %s", code, stderr.String())
	}

	// ...identical re-measurement passes the gate (stdin form).
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-compare", old}, strings.NewReader(sampleBenchOutput), &stdout, &stderr); code != 0 {
		t.Fatalf("self-compare: exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "within") {
		t.Errorf("stdout = %q", stdout.String())
	}

	// A regressed re-measurement fails (two-file form).
	regressed := strings.Replace(sampleBenchOutput, "295 allocs/op", "600 allocs/op", 1)
	newFile := filepath.Join(dir, "new.json")
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-out", newFile}, strings.NewReader(regressed), &stdout, &stderr); code != 0 {
		t.Fatalf("record new: exit %d, stderr: %s", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-compare", old, newFile}, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Fatalf("regressed compare: exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "REGRESSION") || !strings.Contains(stderr.String(), "BenchmarkWritePrometheus") {
		t.Errorf("stderr = %q", stderr.String())
	}

	// Missing baseline file is an error, not a pass.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-compare", filepath.Join(dir, "nope.json")}, strings.NewReader(sampleBenchOutput), &stdout, &stderr); code != 1 {
		t.Errorf("missing baseline: exit %d", code)
	}
}
