// Command benchrecord parses `go test -bench` output on stdin into a
// stable JSON document mapping each benchmark to its ns/op, B/op and
// allocs/op — the format the repo's performance trajectory files
// (BENCH_PR*.json, see EXPERIMENTS.md) are recorded in.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchrecord -out BENCH_PR7.json
//	go test -bench=. -benchmem ./... | benchrecord -compare BENCH_PR7.json
//	benchrecord -compare old.json new.json
//
// Results are keyed by package-qualified benchmark name with the
// GOMAXPROCS suffix stripped (BenchmarkCounterInc-8 and
// BenchmarkCounterInc are the same trajectory point on different
// machines), and the document's keys are sorted so successive
// recordings diff cleanly.
//
// -compare is the CI regression gate: it exits nonzero when any
// benchmark present in both documents allocates more per op in the new
// one than -tolerance allows. Only allocs/op is gated — it is a count
// the runtime reports exactly, independent of machine load, so a 1x
// benchtime run gates reliably where ns/op would flake.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// BenchResult is one benchmark's measurement.
type BenchResult struct {
	// NsPerOp is wall time per iteration in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocedBytesPerOp is heap bytes per iteration (-benchmem only).
	AllocedBytesPerOp int64 `json:"bytes_per_op,omitempty"`
	// AllocsPerOp is heap allocations per iteration (-benchmem only).
	AllocsPerOp int64 `json:"allocs_per_op,omitempty"`
	// Iterations is the b.N the measurement ran with.
	Iterations int64 `json:"iterations"`
}

// Document is the trajectory-file shape: a flat sorted map from
// "pkg.BenchmarkName" to its numbers.
type Document map[string]BenchResult

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchrecord", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "", "write JSON here instead of stdout")
	compare := fs.String("compare", "", "baseline JSON: gate allocs/op regressions against it")
	tolerance := fs.Float64("tolerance", 0.10, "allowed fractional allocs/op growth before -compare fails")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *compare != "" {
		baseline, err := readDocument(*compare)
		if err != nil {
			fmt.Fprintf(stderr, "benchrecord: %v\n", err)
			return 1
		}
		// New measurements come from a second JSON file when given,
		// otherwise from bench output on stdin (the Makefile pipe form).
		var current Document
		if fs.NArg() > 0 {
			current, err = readDocument(fs.Arg(0))
		} else {
			current, err = Parse(stdin)
		}
		if err != nil {
			fmt.Fprintf(stderr, "benchrecord: %v\n", err)
			return 1
		}
		if len(current) == 0 {
			fmt.Fprintln(stderr, "benchrecord: no benchmarks to compare")
			return 1
		}
		regressions, checked := Compare(baseline, current, *tolerance)
		for _, r := range regressions {
			fmt.Fprintln(stderr, "benchrecord: REGRESSION:", r)
		}
		if len(regressions) > 0 {
			return 1
		}
		fmt.Fprintf(stdout, "benchrecord: %d benchmarks within %.0f%% allocs/op of %s\n",
			checked, *tolerance*100, *compare)
		return 0
	}

	doc, err := Parse(stdin)
	if err != nil {
		fmt.Fprintf(stderr, "benchrecord: %v\n", err)
		return 1
	}
	if len(doc) == 0 {
		fmt.Fprintln(stderr, "benchrecord: no benchmark lines on stdin")
		return 1
	}
	b, err := Marshal(doc)
	if err != nil {
		fmt.Fprintf(stderr, "benchrecord: %v\n", err)
		return 1
	}
	if *out != "" {
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fmt.Fprintf(stderr, "benchrecord: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "recorded %d benchmarks to %s\n", len(doc), *out)
		return 0
	}
	stdout.Write(b)
	return 0
}

// Parse reads `go test -bench` output and collects benchmark lines.
// Package context comes from the trailing "ok <pkg> <time>" / leading
// "pkg: <pkg>" lines; a benchmark seen before any package marker is
// keyed by bare name.
func Parse(r io.Reader) (Document, error) {
	doc := Document{}
	// Benchmarks print before their package's "ok" summary line, so
	// buffer each package's results until the marker names it.
	pending := map[string]BenchResult{}
	flush := func(pkg string) {
		for name, res := range pending {
			key := name
			if pkg != "" {
				key = pkg + "." + name
			}
			doc[key] = res
		}
		pending = map[string]BenchResult{}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		f := strings.Fields(line)
		switch {
		case len(f) >= 3 && f[0] == "ok":
			flush(f[1])
		case len(f) >= 2 && f[0] == "pkg:":
			// nothing to do: pkg: precedes the benchmarks, the ok
			// line after them is the reliable marker
		case len(f) >= 3 && strings.HasPrefix(f[0], "Benchmark"):
			name, res, ok := parseBenchLine(f)
			if ok {
				pending[name] = res
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush("")
	return doc, nil
}

// parseBenchLine decodes one "BenchmarkX-8  N  12.3 ns/op [...]" line.
func parseBenchLine(f []string) (string, BenchResult, bool) {
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix only when numeric.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return "", BenchResult{}, false
	}
	res := BenchResult{Iterations: iters}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		switch f[i+1] {
		case "ns/op":
			if v, err := strconv.ParseFloat(f[i], 64); err == nil {
				res.NsPerOp = v
				seen = true
			}
		case "B/op":
			if v, err := strconv.ParseInt(f[i], 10, 64); err == nil {
				res.AllocedBytesPerOp = v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(f[i], 10, 64); err == nil {
				res.AllocsPerOp = v
			}
		}
	}
	return name, res, seen
}

// readDocument loads a recorded trajectory file.
func readDocument(path string) (Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return doc, nil
}

// Compare gates current against baseline: every benchmark present in
// both documents may grow allocs/op by at most the tolerance fraction
// (with an absolute slack of 1 alloc so near-zero baselines don't gate
// on noise). Benchmarks only in one document are skipped — renames and
// new benchmarks must not fail the gate. Returns the regression
// descriptions sorted by name and the number of benchmarks checked.
func Compare(baseline, current Document, tolerance float64) ([]string, int) {
	var regressions []string
	checked := 0
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base, ok := baseline[name]
		if !ok {
			continue
		}
		checked++
		cur := current[name]
		limit := int64(float64(base.AllocsPerOp)*(1+tolerance)) + 1
		if cur.AllocsPerOp > limit {
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/op %d -> %d (limit %d)",
					name, base.AllocsPerOp, cur.AllocsPerOp, limit))
		}
	}
	return regressions, checked
}

// Marshal renders the document with sorted keys and a trailing
// newline — byte-stable for a given input.
func Marshal(doc Document) ([]byte, error) {
	keys := make([]string, 0, len(doc))
	for k := range doc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("{\n")
	for i, k := range keys {
		v, err := json.Marshal(doc[k])
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "  %q: %s", k, v)
		if i < len(keys)-1 {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	b.WriteString("}\n")
	return []byte(b.String()), nil
}
