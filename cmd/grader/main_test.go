package main

import (
	"strings"
	"testing"
)

func runGrader(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestGraderTautology(t *testing.T) {
	code, out, errb := runGrader(t, "", "tautology", "1-", "0-", "yes")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errb)
	}
	if out == "" {
		t.Fatal("empty grading report")
	}
}

func TestGraderURPComplement(t *testing.T) {
	// on-set f = a, correct complement a'.
	code, out, _ := runGrader(t, "0-\n", "urp", "1-")
	if code != 0 || out == "" {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestGraderBatch(t *testing.T) {
	code, out, _ := runGrader(t, "0-\n---\n1-\n", "batch", "urp", "1-")
	if code != 0 {
		t.Fatalf("code=%d", code)
	}
	if !strings.Contains(out, "submission 2") || !strings.Contains(out, "grading telemetry") {
		t.Fatalf("batch output = %q", out)
	}
}

func TestGraderUsage(t *testing.T) {
	if code, _, _ := runGrader(t, ""); code != 2 {
		t.Errorf("no args: code=%d, want 2", code)
	}
	if code, _, _ := runGrader(t, "", "frobnicate"); code != 2 {
		t.Errorf("unknown subcommand: code=%d, want 2", code)
	}
	if code, _, _ := runGrader(t, "", "batch", "nope"); code != 2 {
		t.Errorf("bad batch kind: code=%d, want 2", code)
	}
	if code, _, _ := runGrader(t, "", "urp", "1z"); code != 1 {
		t.Errorf("bad cover: code=%d, want 1", code)
	}
	if code, _, _ := runGrader(t, "", "placement", "-case", "nope"); code != 1 {
		t.Errorf("unknown case: code=%d, want 1", code)
	}
}

func TestGraderPlacement(t *testing.T) {
	// An empty submission still yields a graded report (score 0).
	code, out, _ := runGrader(t, "", "placement", "-case", "fract")
	if code != 0 || out == "" {
		t.Fatalf("code=%d out=%q", code, out)
	}
}
