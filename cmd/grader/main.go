// Command grader is the auto-grading front end for the four software
// projects. Submissions are plain text on stdin, per the course's
// portal architecture.
//
// Usage:
//
//	grader battery                      run the Figure 6 battery on the reference router
//	grader urp <on-set cubes...>        grade a complement submission (stdin)
//	grader tautology <cubes...> yes|no  grade a tautology verdict
//	grader placement -case fract        grade a Project 3 placement (stdin)
//	grader routing -case fract -seed 1  grade Project 4 routes (stdin)
//	grader batch urp <on-set cubes...>  grade many submissions (stdin, separated
//	                                    by "---" lines) and print the batch
//	                                    summary: per-unit pass rates, the
//	                                    earned/possible distribution, and the
//	                                    grading telemetry snapshot
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"vlsicad/internal/bench"
	"vlsicad/internal/cube"
	"vlsicad/internal/grader"
	"vlsicad/internal/netlist"
	"vlsicad/internal/obs"
	"vlsicad/internal/place"
	"vlsicad/internal/repair"
)

// repairFixture is the Project 2 grading circuit: z = ab + c.
const repairFixture = `
.model fixture
.inputs a b c
.outputs z
.names a b t
11 1
.names t c z
1- 1
-1 1
.end
`

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "battery":
		fmt.Print(grader.RunRouterBattery(grader.ReferenceRouter))
	case "batch":
		if len(os.Args) < 4 || os.Args[2] != "urp" {
			usage()
		}
		on, err := cube.ParseCover(os.Args[3:])
		if err != nil {
			fatal(err)
		}
		runBatch(on, readStdin())
	case "urp":
		if len(os.Args) < 3 {
			usage()
		}
		on, err := cube.ParseCover(os.Args[2:])
		if err != nil {
			fatal(err)
		}
		fmt.Print(grader.GradeURPComplement(on, readStdin()))
	case "tautology":
		if len(os.Args) < 4 {
			usage()
		}
		on, err := cube.ParseCover(os.Args[2 : len(os.Args)-1])
		if err != nil {
			fatal(err)
		}
		fmt.Print(grader.GradeURPTautology(on, os.Args[len(os.Args)-1]))
	case "repair":
		// Built-in Project 2 fixture: spec z = ab + c with the AND
		// node faulted; the submission is the replacement cover for
		// node "t" over fanins (a, b).
		spec, err := netlist.ParseBLIF(strings.NewReader(repairFixture))
		if err != nil {
			fatal(err)
		}
		impl := spec.Clone()
		if err := repair.InjectFault(impl, "t"); err != nil {
			fatal(err)
		}
		fmt.Print(grader.GradeRepair(spec, impl, "t", readStdin()))
	case "placement":
		fs := flag.NewFlagSet("placement", flag.ExitOnError)
		caseName := fs.String("case", "fract", "benchmark case")
		seed := fs.Int64("seed", 1, "instance seed")
		fs.Parse(os.Args[2:])
		c := findCase(*caseName)
		p := bench.Placement(*c, *seed)
		ref, err := place.Quadratic(p, place.QuadraticOpts{})
		if err != nil {
			fatal(err)
		}
		legal, err := place.Legalize(p, ref)
		if err != nil {
			fatal(err)
		}
		fmt.Print(grader.GradePlacement(p, readStdin(), p.HPWL(legal)))
	case "routing":
		fs := flag.NewFlagSet("routing", flag.ExitOnError)
		caseName := fs.String("case", "fract", "benchmark case")
		seed := fs.Int64("seed", 1, "instance seed")
		fs.Parse(os.Args[2:])
		c := findCase(*caseName)
		p := bench.Placement(*c, *seed)
		ref, err := place.Quadratic(p, place.QuadraticOpts{})
		if err != nil {
			fatal(err)
		}
		legal, err := place.Legalize(p, ref)
		if err != nil {
			fatal(err)
		}
		g, nets := bench.Routing(*c, legal, p, *seed, 0.02)
		fmt.Print(grader.GradeRouting(g, nets, readStdin()))
	default:
		usage()
	}
}

// runBatch grades every "---"-separated submission as a URP
// complement of the on-set, then prints each report, the aggregate
// batch summary, and the grading telemetry.
func runBatch(on *cube.Cover, input string) {
	ob := obs.NewObserver(nil)
	batch := grader.NewBatch("Project 1: URP complement")
	for i, sub := range splitSubmissions(input) {
		rep := grader.GradeURPComplement(on, sub)
		fmt.Printf("--- submission %d ---\n%s", i+1, rep)
		batch.Add(rep)
	}
	batch.Record(ob)
	fmt.Println()
	fmt.Print(batch)
	fmt.Println("\n=== grading telemetry ===")
	ob.Snapshot().WriteText(os.Stdout)
}

// splitSubmissions cuts stdin into submissions at lines containing
// only "---" (surrounding whitespace ignored); empty records are
// dropped.
func splitSubmissions(input string) []string {
	var subs []string
	var cur []string
	flush := func() {
		text := strings.TrimSpace(strings.Join(cur, "\n"))
		if text != "" {
			subs = append(subs, text)
		}
		cur = cur[:0]
	}
	for _, line := range strings.Split(input, "\n") {
		if strings.TrimSpace(line) == "---" {
			flush()
			continue
		}
		cur = append(cur, line)
	}
	flush()
	return subs
}

func findCase(name string) *bench.Case {
	for _, bc := range bench.Suite() {
		if bc.Name == name {
			c := bc
			return &c
		}
	}
	fatal(fmt.Errorf("unknown case %q", name))
	return nil
}

func readStdin() string {
	b, err := io.ReadAll(os.Stdin)
	if err != nil {
		fatal(err)
	}
	return string(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "grader:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  grader battery
  grader urp <on-set cubes...>          (submission on stdin)
  grader tautology <cubes...> yes|no
  grader repair                         (replacement cover on stdin)
  grader placement -case NAME -seed N   (submission on stdin)
  grader routing -case NAME -seed N     (submission on stdin)
  grader batch urp <on-set cubes...>    (submissions on stdin, "---"-separated)`)
	os.Exit(2)
}
