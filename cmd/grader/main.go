// Command grader is the auto-grading front end for the four software
// projects. Submissions are plain text on stdin, per the course's
// portal architecture.
//
// Usage:
//
//	grader battery                      run the Figure 6 battery on the reference router
//	grader urp <on-set cubes...>        grade a complement submission (stdin)
//	grader tautology <cubes...> yes|no  grade a tautology verdict
//	grader placement -case fract        grade a Project 3 placement (stdin)
//	grader routing -case fract -seed 1  grade Project 4 routes (stdin)
//	grader batch urp <on-set cubes...>  grade many submissions (stdin, separated
//	                                    by "---" lines) and print the batch
//	                                    summary: per-unit pass rates, the
//	                                    earned/possible distribution, and the
//	                                    grading telemetry snapshot
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"vlsicad/internal/bench"
	"vlsicad/internal/cube"
	"vlsicad/internal/grader"
	"vlsicad/internal/netlist"
	"vlsicad/internal/obs"
	"vlsicad/internal/place"
	"vlsicad/internal/repair"
)

// repairFixture is the Project 2 grading circuit: z = ab + c.
const repairFixture = `
.model fixture
.inputs a b c
.outputs z
.names a b t
11 1
.names t c z
1- 1
-1 1
.end
`

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "grader:", err)
		return 1
	}
	usage := func() int {
		fmt.Fprintln(stderr, `usage:
  grader battery
  grader urp <on-set cubes...>          (submission on stdin)
  grader tautology <cubes...> yes|no
  grader repair                         (replacement cover on stdin)
  grader placement -case NAME -seed N   (submission on stdin)
  grader routing -case NAME -seed N     (submissions on stdin)
  grader batch urp <on-set cubes...>    (submissions on stdin, "---"-separated)`)
		return 2
	}
	readAll := func() (string, error) {
		b, err := io.ReadAll(stdin)
		return string(b), err
	}
	// refPlacement builds the reference legal placement that grades
	// Project 3 and seeds the Project 4 routing instance.
	refPlacement := func(c *bench.Case, seed int64) (*place.Problem, *place.Placement, error) {
		p := bench.Placement(*c, seed)
		ref, err := place.Quadratic(p, place.QuadraticOpts{})
		if err != nil {
			return nil, nil, err
		}
		legal, err := place.Legalize(p, ref)
		if err != nil {
			return nil, nil, err
		}
		return p, legal, nil
	}

	if len(args) < 1 {
		return usage()
	}
	switch args[0] {
	case "battery":
		fmt.Fprint(stdout, grader.RunRouterBattery(grader.ReferenceRouter))
	case "batch":
		if len(args) < 3 || args[1] != "urp" {
			return usage()
		}
		on, err := cube.ParseCover(args[2:])
		if err != nil {
			return fail(err)
		}
		input, err := readAll()
		if err != nil {
			return fail(err)
		}
		runBatch(stdout, on, input)
	case "urp":
		if len(args) < 2 {
			return usage()
		}
		on, err := cube.ParseCover(args[1:])
		if err != nil {
			return fail(err)
		}
		sub, err := readAll()
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, grader.GradeURPComplement(on, sub))
	case "tautology":
		if len(args) < 3 {
			return usage()
		}
		on, err := cube.ParseCover(args[1 : len(args)-1])
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, grader.GradeURPTautology(on, args[len(args)-1]))
	case "repair":
		// Built-in Project 2 fixture: spec z = ab + c with the AND
		// node faulted; the submission is the replacement cover for
		// node "t" over fanins (a, b).
		spec, err := netlist.ParseBLIF(strings.NewReader(repairFixture))
		if err != nil {
			return fail(err)
		}
		impl := spec.Clone()
		if err := repair.InjectFault(impl, "t"); err != nil {
			return fail(err)
		}
		sub, err := readAll()
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, grader.GradeRepair(spec, impl, "t", sub))
	case "placement", "routing":
		fs := flag.NewFlagSet(args[0], flag.ContinueOnError)
		fs.SetOutput(stderr)
		caseName := fs.String("case", "fract", "benchmark case")
		seed := fs.Int64("seed", 1, "instance seed")
		if err := fs.Parse(args[1:]); err != nil {
			return 2
		}
		c := findCase(*caseName)
		if c == nil {
			return fail(fmt.Errorf("unknown case %q", *caseName))
		}
		p, legal, err := refPlacement(c, *seed)
		if err != nil {
			return fail(err)
		}
		sub, err := readAll()
		if err != nil {
			return fail(err)
		}
		if args[0] == "placement" {
			fmt.Fprint(stdout, grader.GradePlacement(p, sub, p.HPWL(legal)))
		} else {
			g, nets := bench.Routing(*c, legal, p, *seed, 0.02)
			fmt.Fprint(stdout, grader.GradeRouting(g, nets, sub))
		}
	default:
		return usage()
	}
	return 0
}

// runBatch grades every "---"-separated submission as a URP
// complement of the on-set, then prints each report, the aggregate
// batch summary, and the grading telemetry.
func runBatch(w io.Writer, on *cube.Cover, input string) {
	ob := obs.NewObserver(nil)
	batch := grader.NewBatch("Project 1: URP complement")
	for i, sub := range splitSubmissions(input) {
		rep := grader.GradeURPComplement(on, sub)
		fmt.Fprintf(w, "--- submission %d ---\n%s", i+1, rep)
		batch.Add(rep)
	}
	batch.Record(ob)
	fmt.Fprintln(w)
	fmt.Fprint(w, batch)
	fmt.Fprintln(w, "\n=== grading telemetry ===")
	ob.Snapshot().WriteText(w)
}

// splitSubmissions cuts stdin into submissions at lines containing
// only "---" (surrounding whitespace ignored); empty records are
// dropped.
func splitSubmissions(input string) []string {
	var subs []string
	var cur []string
	flush := func() {
		text := strings.TrimSpace(strings.Join(cur, "\n"))
		if text != "" {
			subs = append(subs, text)
		}
		cur = cur[:0]
	}
	for _, line := range strings.Split(input, "\n") {
		if strings.TrimSpace(line) == "---" {
			flush()
			continue
		}
		cur = append(cur, line)
	}
	flush()
	return subs
}

func findCase(name string) *bench.Case {
	for _, bc := range bench.Suite() {
		if bc.Name == name {
			c := bc
			return &c
		}
	}
	return nil
}
