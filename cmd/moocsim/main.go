// Command moocsim regenerates the paper's figures as text tables:
// the concept map (Figure 1), the lecture catalog (Figure 2), the
// engagement funnel (Figure 8), per-lecture viewership (Figure 9),
// demographics (Figure 10) and the survey word cloud (Figure 11) —
// plus a grading-telemetry report (-fig telemetry) aggregating
// machine grading across a cohort sample, with the obs metrics
// snapshot the live course staff would watch.
//
// Usage:
//
//	moocsim [-fig all|1|2|8|9|10|11|telemetry] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vlsicad/internal/mooc"
	"vlsicad/internal/obs"
)

func main() {
	fig := flag.String("fig", "all", "figure to print: all, 1, 2, 8, 9, 10, 11")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	cohort := mooc.Simulate(mooc.PaperParams(), *seed)
	show := func(f string) bool { return *fig == "all" || *fig == f }

	if show("1") {
		fmt.Println("=== Figure 1: concept map (BDD snapshot) ===")
		cm := mooc.ConceptMap()
		for _, c := range cm {
			if c.Topic == "BDDs" || c.Topic == "Computational Boolean Algebra" {
				fmt.Printf("  %-34s %-32s %3d slides\n", c.Topic, c.Name, c.Slides)
			}
		}
		concepts, slides, _ := mooc.ConceptStats(cm)
		fmt.Printf("  course total: %d concepts, %d slides\n\n", concepts, slides)
	}
	if show("2") {
		fmt.Println("=== Figure 2: MOOC lecture catalog ===")
		ls := mooc.Lectures()
		count, hours, avg := mooc.LectureStats(ls)
		for _, l := range ls {
			fmt.Printf("  %-5s %-44s %5.1f min\n", l.Index, l.Title, l.Minutes)
		}
		fmt.Printf("  %d videos, average %.1f minutes, %.2f total hours\n", count, avg, hours)
		e := mooc.CourseEfficiency()
		fmt.Printf("  efficiency: %d of %d slides (%.0f%%) in %.0f%% of the lecture time\n\n",
			e.MOOCSlides, e.TraditionalSlides, 100*e.ContentFraction(), 100*e.TimeFraction())
	}
	if show("8") {
		fmt.Println("=== Figure 8: participation funnel ===")
		f := cohort.Funnel()
		fmt.Printf("  registered participants at peak : %6d\n", f.Registered)
		fmt.Printf("  watched a video                 : %6d\n", f.WatchedVideo)
		fmt.Printf("  did a homework                  : %6d\n", f.DidHomework)
		fmt.Printf("  tried a software assignment     : %6d\n", f.TriedSoftware)
		fmt.Printf("  took the final exam             : %6d\n", f.TookFinal)
		fmt.Printf("  statements of accomplishment    : %6d\n", f.Certificates)
		low, high := cohort.CompetencyEstimate()
		fmt.Printf("  serious-EDA-competency estimate : %d .. %d\n\n", low, high)
	}
	if show("9") {
		fmt.Println("=== Figure 9: per-lecture viewers (69 videos) ===")
		v := cohort.Viewership()
		for i, n := range v {
			if i%5 == 0 || i == len(v)-1 {
				bar := strings.Repeat("#", n/150)
				fmt.Printf("  lecture %2d: %5d %s\n", i+1, n, bar)
			}
		}
		fmt.Println()
	}
	if show("10") {
		fmt.Println("=== Figure 10: demographics ===")
		d := cohort.Demographics()
		total := len(cohort.Participants)
		for i, name := range d.TopCountries {
			if i >= 12 {
				break
			}
			fmt.Printf("  %-16s %5.2f%%\n", name, 100*float64(d.ByCountry[name])/float64(total))
		}
		fmt.Printf("  average age %.1f (min %d, max %d); female %.0f%%; BS %.0f%%, MS/PhD %.0f%%\n\n",
			d.AvgAge, d.MinAge, d.MaxAge, 100*d.FemaleShare, 100*d.BSShare, 100*d.MSPhDShare)
	}
	if show("forum") || *fig == "all" {
		fmt.Println("=== Section 3: forum activity (3 TAs) ===")
		fs := cohort.SimulateForum(mooc.DefaultForumParams(), *seed)
		for _, w := range fs.Weeks {
			fmt.Printf("  week %2d: %5d active, %4d threads, %4d peer replies, %4d staff replies\n",
				w.Week, w.Active, w.Threads, w.PeerReplies, w.StaffReplies)
		}
		fmt.Printf("  total %d threads, %.0f%% staff-answered, %.0f replies per TA\n\n",
			fs.Threads, 100*fs.AnsweredFraction, fs.StaffPerTA)
	}
	if show("11") {
		fmt.Println("=== Figure 11: survey word cloud (top 20) ===")
		wc := mooc.MineWordCloud(mooc.SurveyResponses(1000, *seed))
		for i, w := range wc {
			if i >= 20 {
				break
			}
			fmt.Printf("  %-14s %4d\n", w.Word, w.Count)
		}
		fmt.Println()
	}
	if show("telemetry") {
		fmt.Println("=== Section 2.2: grading telemetry (200-participant sample) ===")
		ob := obs.NewObserver(nil)
		tel := mooc.SimulateGrading(cohort, 4, 200, 3, 0.8, *seed, ob)
		fmt.Print(tel)
		fmt.Println("  metrics snapshot:")
		ob.Snapshot().Metrics.WriteText(os.Stdout)
	}
}
