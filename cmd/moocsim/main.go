// Command moocsim regenerates the paper's figures as text tables:
// the concept map (Figure 1), the lecture catalog (Figure 2), the
// engagement funnel (Figure 8), per-lecture viewership (Figure 9),
// demographics (Figure 10) and the survey word cloud (Figure 11) —
// plus a grading-telemetry report (-fig telemetry) aggregating
// machine grading across a cohort sample, a portal-resilience
// report (-fig portal) driving the sharded job pool through a seeded
// fault storm, with the obs metrics snapshot the live course staff
// would watch, a fairness drill (-fig fairness) where one hot
// user floods the async ticket API against nine normal users while
// quotas, the weighted-fair queue, and per-job deadlines keep the
// portal honest, and a recovery drill (-fig recovery) that kills the
// write-ahead ticket journal mid-record at a seed-derived byte budget,
// restarts the pool from the surviving prefix, and checks the
// conservation ledger across the crash (-journal writes the second
// life's journal to a file).
//
// With -metrics-addr the whole run is scrapeable live: an HTTP
// exporter serves Prometheus /metrics, the JSON /snapshot, /healthz,
// /readyz (wired to the drill pool's breaker state) and /debug/spans
// while the figures run; -hold keeps the process (and exporter) alive
// afterwards so an external scraper can collect the final state —
// the mode the nightly CI scrape drill exercises.
//
// Usage:
//
//	moocsim [-fig all|1|2|8|9|10|11|telemetry|portal|fairness|recovery]
//	        [-seed N] [-journal file]
//	        [-metrics-addr host:port] [-hold duration]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"vlsicad/internal/fault"
	"vlsicad/internal/mooc"
	"vlsicad/internal/obs"
	"vlsicad/internal/portal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("moocsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.String("fig", "all", "figure to print: all, 1, 2, 8, 9, 10, 11, telemetry, portal, fairness, recovery")
	seed := fs.Int64("seed", 1, "simulation seed")
	journalPath := fs.String("journal", "", "recovery drill: write the recovered pool's ticket journal to this file (default in-memory)")
	metricsAddr := fs.String("metrics-addr", "", "serve live telemetry (/metrics /snapshot /healthz /readyz /debug/spans) on this address")
	hold := fs.Duration("hold", 0, "keep the process (and telemetry endpoint) alive this long after the figures finish")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// One observer feeds every figure's telemetry and, with
	// -metrics-addr, the live exporter. Readiness follows the drill
	// pool while one is running (ready otherwise).
	ob := obs.NewObserver(nil)
	gate := &readyGate{}
	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, ob, obs.HandlerOpts{Ready: gate.check})
		if err != nil {
			fmt.Fprintln(stderr, "moocsim:", err)
			return 1
		}
		defer srv.Close()
		rc := obs.StartRuntimeCollector(ob, time.Second)
		defer rc.Stop()
		fmt.Fprintf(stdout, "serving telemetry on %s\n", srv.URL())
	}

	cohort := mooc.Simulate(mooc.PaperParams(), *seed)
	show := func(f string) bool { return *fig == "all" || *fig == f }

	if show("1") {
		fmt.Fprintln(stdout, "=== Figure 1: concept map (BDD snapshot) ===")
		cm := mooc.ConceptMap()
		for _, c := range cm {
			if c.Topic == "BDDs" || c.Topic == "Computational Boolean Algebra" {
				fmt.Fprintf(stdout, "  %-34s %-32s %3d slides\n", c.Topic, c.Name, c.Slides)
			}
		}
		concepts, slides, _ := mooc.ConceptStats(cm)
		fmt.Fprintf(stdout, "  course total: %d concepts, %d slides\n\n", concepts, slides)
	}
	if show("2") {
		fmt.Fprintln(stdout, "=== Figure 2: MOOC lecture catalog ===")
		ls := mooc.Lectures()
		count, hours, avg := mooc.LectureStats(ls)
		for _, l := range ls {
			fmt.Fprintf(stdout, "  %-5s %-44s %5.1f min\n", l.Index, l.Title, l.Minutes)
		}
		fmt.Fprintf(stdout, "  %d videos, average %.1f minutes, %.2f total hours\n", count, avg, hours)
		e := mooc.CourseEfficiency()
		fmt.Fprintf(stdout, "  efficiency: %d of %d slides (%.0f%%) in %.0f%% of the lecture time\n\n",
			e.MOOCSlides, e.TraditionalSlides, 100*e.ContentFraction(), 100*e.TimeFraction())
	}
	if show("8") {
		fmt.Fprintln(stdout, "=== Figure 8: participation funnel ===")
		f := cohort.Funnel()
		fmt.Fprintf(stdout, "  registered participants at peak : %6d\n", f.Registered)
		fmt.Fprintf(stdout, "  watched a video                 : %6d\n", f.WatchedVideo)
		fmt.Fprintf(stdout, "  did a homework                  : %6d\n", f.DidHomework)
		fmt.Fprintf(stdout, "  tried a software assignment     : %6d\n", f.TriedSoftware)
		fmt.Fprintf(stdout, "  took the final exam             : %6d\n", f.TookFinal)
		fmt.Fprintf(stdout, "  statements of accomplishment    : %6d\n", f.Certificates)
		low, high := cohort.CompetencyEstimate()
		fmt.Fprintf(stdout, "  serious-EDA-competency estimate : %d .. %d\n\n", low, high)
	}
	if show("9") {
		fmt.Fprintln(stdout, "=== Figure 9: per-lecture viewers (69 videos) ===")
		v := cohort.Viewership()
		for i, n := range v {
			if i%5 == 0 || i == len(v)-1 {
				bar := strings.Repeat("#", n/150)
				fmt.Fprintf(stdout, "  lecture %2d: %5d %s\n", i+1, n, bar)
			}
		}
		fmt.Fprintln(stdout)
	}
	if show("10") {
		fmt.Fprintln(stdout, "=== Figure 10: demographics ===")
		d := cohort.Demographics()
		total := len(cohort.Participants)
		for i, name := range d.TopCountries {
			if i >= 12 {
				break
			}
			fmt.Fprintf(stdout, "  %-16s %5.2f%%\n", name, 100*float64(d.ByCountry[name])/float64(total))
		}
		fmt.Fprintf(stdout, "  average age %.1f (min %d, max %d); female %.0f%%; BS %.0f%%, MS/PhD %.0f%%\n\n",
			d.AvgAge, d.MinAge, d.MaxAge, 100*d.FemaleShare, 100*d.BSShare, 100*d.MSPhDShare)
	}
	if show("forum") || *fig == "all" {
		fmt.Fprintln(stdout, "=== Section 3: forum activity (3 TAs) ===")
		fsim := cohort.SimulateForum(mooc.DefaultForumParams(), *seed)
		for _, w := range fsim.Weeks {
			fmt.Fprintf(stdout, "  week %2d: %5d active, %4d threads, %4d peer replies, %4d staff replies\n",
				w.Week, w.Active, w.Threads, w.PeerReplies, w.StaffReplies)
		}
		fmt.Fprintf(stdout, "  total %d threads, %.0f%% staff-answered, %.0f replies per TA\n\n",
			fsim.Threads, 100*fsim.AnsweredFraction, fsim.StaffPerTA)
	}
	if show("11") {
		fmt.Fprintln(stdout, "=== Figure 11: survey word cloud (top 20) ===")
		wc := mooc.MineWordCloud(mooc.SurveyResponses(1000, *seed))
		for i, w := range wc {
			if i >= 20 {
				break
			}
			fmt.Fprintf(stdout, "  %-14s %4d\n", w.Word, w.Count)
		}
		fmt.Fprintln(stdout)
	}
	if show("telemetry") {
		fmt.Fprintln(stdout, "=== Section 2.2: grading telemetry (200-participant sample) ===")
		tel := mooc.SimulateGrading(cohort, 4, 200, 3, 0.8, *seed, ob)
		fmt.Fprint(stdout, tel)
		fmt.Fprintln(stdout, "  metrics snapshot:")
		ob.Snapshot().Metrics.WriteText(stdout)
	}
	if show("portal") {
		if err := portalStorm(stdout, uint64(*seed), ob, gate); err != nil {
			fmt.Fprintln(stderr, "moocsim:", err)
			return 1
		}
	}
	if show("fairness") {
		if err := fairnessDrill(stdout, uint64(*seed), ob, gate); err != nil {
			fmt.Fprintln(stderr, "moocsim:", err)
			return 1
		}
	}
	if show("recovery") {
		if err := recoveryDrill(stdout, uint64(*seed), *journalPath, ob, gate); err != nil {
			fmt.Fprintln(stderr, "moocsim:", err)
			return 1
		}
	}
	if *hold > 0 {
		fmt.Fprintf(stdout, "holding for %v (scrape away)\n", *hold)
		time.Sleep(*hold)
	}
	return 0
}

// readyGate is a mutable /readyz check: nil (ready) until the drill
// pool installs its Ready method, cleared again before pool close.
type readyGate struct {
	mu sync.Mutex
	fn func() error
}

func (g *readyGate) set(fn func() error) {
	g.mu.Lock()
	g.fn = fn
	g.mu.Unlock()
}

func (g *readyGate) check() error {
	g.mu.Lock()
	fn := g.fn
	g.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// portalStorm drives the resilient job pool through a seeded fault
// storm — the operational drill behind the paper's "turn the cloud
// tools loose on planet earth" deployment. Every course tool is
// wrapped in a deterministic fault injector; concurrent users submit
// jobs; the report shows what the isolation machinery absorbed.
func portalStorm(w io.Writer, seed uint64, ob *obs.Observer, gate *readyGate) error {
	fmt.Fprintln(w, "=== portal resilience drill (sharded pool, seeded faults) ===")
	p := portal.NewPool(portal.PoolConfig{
		Workers:    4,
		QueueDepth: 64,
		Timeout:    25 * time.Millisecond,
		Retry:      portal.RetryPolicy{MaxAttempts: 2, BaseDelay: 200 * time.Microsecond, JitterFrac: 0.5},
		Breaker:    portal.BreakerConfig{FailureThreshold: 6, Cooldown: 20 * time.Millisecond},
		Seed:       seed,
	})
	defer p.Close()
	p.SetObserver(ob)
	// /readyz follows the pool's breaker state for the duration of
	// the drill; cleared before Close so a held process reads ready.
	gate.set(p.Ready)
	defer gate.set(nil)

	cfg := fault.Config{Panic: 0.04, Hang: 0.02, Transient: 0.10,
		Slow: 0.05, Garbage: 0.04, SlowDelay: 200 * time.Microsecond}
	tools := []portal.Tool{portal.KBDDTool(), portal.EspressoTool(),
		portal.MiniSATTool(), portal.SISTool(), portal.AxbTool()}
	injectors := make(map[string]*fault.Injector, len(tools))
	var names []string
	for i, t := range tools {
		inj := fault.Wrap(t, seed+uint64(i)*1000, cfg)
		injectors[t.Name()] = inj
		names = append(names, t.Name())
		if err := p.Register(inj); err != nil {
			return err
		}
	}
	inputs := map[string]string{
		"kbdd":     "var a b c\nf = a & b | ~c\nsatcount f\n",
		"espresso": ".i 3\n.o 1\n111 1\n110 1\n101 1\n011 1\n.e\n",
		"minisat":  "p cnf 3 4\n1 2 0\n-1 3 0\n-2 3 0\n-3 0\n",
		"sis":      ".model m\n.inputs a b\n.outputs x\n.names a b x\n11 1\n.end\nprint_stats\n",
		"axb":      "2 cg\n2 -1\n-1 2\n1 1\n",
	}

	const users, jobsPerUser = 12, 10
	var ok, failed, shed, abandoned int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			user := fmt.Sprintf("participant-%03d", u)
			for j := 0; j < jobsPerUser; j++ {
				tool := names[(u+j)%len(names)]
				res, err := p.Submit(user, tool, inputs[tool])
				mu.Lock()
				switch {
				case err != nil:
					shed++
				case res.Abandoned:
					abandoned++
				case res.Err != "":
					failed++
				default:
					ok++
				}
				mu.Unlock()
			}
		}(u)
	}
	wg.Wait()
	for _, inj := range injectors {
		inj.ReleaseHung()
	}

	fmt.Fprintf(w, "  %d users x %d jobs over %d fault-injected tools (seed %d)\n",
		users, jobsPerUser, len(tools), seed)
	fmt.Fprintf(w, "  outcomes: %d ok, %d failed, %d abandoned (runaway), %d shed\n",
		ok, failed, abandoned, shed)

	fmt.Fprintln(w, "  injected faults per tool:")
	for _, name := range names {
		counts := injectors[name].Counts()
		var classes []string
		for _, c := range []fault.Class{fault.Panic, fault.Hang, fault.Transient,
			fault.Slow, fault.Garbage} {
			if n := counts[c]; n > 0 {
				classes = append(classes, fmt.Sprintf("%v=%d", c, n))
			}
		}
		if len(classes) == 0 {
			classes = append(classes, "none")
		}
		fmt.Fprintf(w, "    %-9s %s\n", name, strings.Join(classes, " "))
	}

	m := ob.Snapshot().Metrics
	fmt.Fprintln(w, "  resilience counters:")
	keys := []string{"pool_jobs_total", "pool_retries", "portal_panics_recovered",
		"pool_jobs_timeout", "portal_jobs_abandoned", "portal_abandoned_returned",
		"pool_jobs_shed_queue", "pool_jobs_shed_breaker",
		"pool_breaker_open", "pool_breaker_half-open", "pool_breaker_closed"}
	for _, k := range keys {
		fmt.Fprintf(w, "    %-28s %6d\n", k, m.Counters[k])
	}
	fmt.Fprintln(w, "  breaker state by tool:")
	sort.Strings(names)
	for _, name := range names {
		if st, ok := p.BreakerState(name); ok {
			fmt.Fprintf(w, "    %-9s %s\n", name, st)
		}
	}
	return nil
}

// fairnessDrill drives the async ticket lifecycle the way one abusive
// participant would: a hot user floods SubmitAsync against nine
// normal users sharing the pool, while per-user quotas, the
// weighted-fair queue, and per-job deadlines keep the portal honest.
// The report shows who got served, who was shed, and checks that the
// ticket ledger balances — every admitted ticket reached exactly one
// terminal state. With -metrics-addr the whole run is scrapeable live
// (pool_tickets_total, pool_quota_sheds_total,
// pool_deadline_expiries_total, pool_queue_wait_seconds).
func fairnessDrill(w io.Writer, seed uint64, ob *obs.Observer, gate *readyGate) error {
	fmt.Fprintln(w, "=== portal fairness drill (async tickets, quotas, weighted-fair queue) ===")
	const (
		normalUsers = 9
		normalJobs  = 10
		hotJobs     = 120
		hotUser     = "hot-participant"
	)
	p := portal.NewPool(portal.PoolConfig{
		Workers:         4,
		QueueDepth:      32,
		Timeout:         25 * time.Millisecond,
		Seed:            seed,
		QuotaRate:       5,
		QuotaBurst:      30,
		FairShare:       0.25,
		DefaultDeadline: 2 * time.Second,
		UserClass: func(user string) string {
			if user == hotUser {
				return "flooder"
			}
			return "default"
		},
	})
	defer p.Close()
	p.SetObserver(ob)
	gate.set(p.Ready)
	defer gate.set(nil)

	// Every run costs ~1ms of worker time, injected deterministically,
	// so the queue backs up and the fair scheduler has load to arbitrate.
	slow := fault.Wrap(portal.AxbTool(), seed,
		fault.Config{Slow: 1, SlowDelay: time.Millisecond})
	if err := p.Register(slow); err != nil {
		return err
	}
	input := "2 cg\n2 -1\n-1 2\n1 1\n"

	type tally struct{ submitted, admitted, shed, completed, failed, expired, cancelled int }
	var (
		mu                  sync.Mutex
		hot, normal, fickle tally
		wg                  sync.WaitGroup
	)
	collect := func(t *tally, tickets []*portal.Ticket) {
		for _, tk := range tickets {
			_, _ = tk.Wait(nil)
			_, res, err := tk.Status()
			mu.Lock()
			switch {
			case err == portal.ErrDeadline:
				t.expired++
			case err == portal.ErrCancelled:
				t.cancelled++
			case res.Err != "":
				t.failed++
			default:
				t.completed++
			}
			mu.Unlock()
		}
	}
	submit := func(t *tally, user string, opts portal.TicketOpts) *portal.Ticket {
		tk, err := p.SubmitAsyncOpts(user, "axb", input, opts)
		mu.Lock()
		t.submitted++
		if err != nil {
			t.shed++
		} else {
			t.admitted++
		}
		mu.Unlock()
		return tk
	}
	for u := 0; u < normalUsers; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			user := fmt.Sprintf("participant-%03d", u)
			var mine []*portal.Ticket
			for j := 0; j < normalJobs; j++ {
				if tk := submit(&normal, user, portal.TicketOpts{}); tk != nil {
					mine = append(mine, tk)
				}
				time.Sleep(3 * time.Millisecond)
			}
			collect(&normal, mine)
		}(u)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		var mine []*portal.Ticket
		for j := 0; j < hotJobs; j++ {
			opts := portal.TicketOpts{}
			// A few probes carry an already-hopeless deadline: they must
			// expire (where="queued"), never run, never reach history.
			if j%40 == 1 {
				opts.Deadline = time.Microsecond
			}
			if tk := submit(&hot, hotUser, opts); tk != nil {
				mine = append(mine, tk)
			}
			time.Sleep(200 * time.Microsecond)
		}
		collect(&hot, mine)
	}()
	// A fickle user changes their mind mid-storm: tickets cancelled
	// while still queued terminate with ErrCancelled, run nothing, and
	// leave no history entry.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond) // let the queue back up first
		var mine []*portal.Ticket
		for j := 0; j < 2; j++ {
			if tk := submit(&fickle, "fickle-participant", portal.TicketOpts{}); tk != nil {
				tk.Cancel()
				mine = append(mine, tk)
			}
		}
		collect(&fickle, mine)
	}()
	wg.Wait()

	fmt.Fprintf(w, "  1 hot user x %d jobs vs %d normal users x %d jobs (seed %d)\n",
		hotJobs, normalUsers, normalJobs, seed)
	fmt.Fprintln(w, "  knobs: QuotaRate=5/s QuotaBurst=30 FairShare=0.25 DefaultDeadline=2s")
	fmt.Fprintln(w, "  per-class outcomes:")
	row := func(name string, t tally) {
		fmt.Fprintf(w, "    %-16s submitted %3d  admitted %3d  shed %3d  completed %3d  failed %2d  expired %2d  cancelled %2d\n",
			name, t.submitted, t.admitted, t.shed, t.completed, t.failed, t.expired, t.cancelled)
	}
	row("hot (flooder)", hot)
	row(fmt.Sprintf("normal (x%d)", normalUsers), normal)
	row("fickle (cancels)", fickle)
	if total := hot.completed + normal.completed; total > 0 {
		fmt.Fprintf(w, "  hot completion share: %.0f%% of %d completions (raw demand was %.0f%%)\n",
			100*float64(hot.completed)/float64(total), total,
			100*float64(hotJobs)/float64(hotJobs+normalUsers*normalJobs))
	}

	// Terminal counters land just after each ticket's done channel
	// closes, so give the ledger a brief settle window before judging.
	var adm, cmp, exp, cnc int64
	balanced := false
	for i := 0; i < 200 && !balanced; i++ {
		m := ob.Snapshot().Metrics
		state := func(s string) int64 {
			v, _ := m.CounterSeries("pool_tickets_total", map[string]string{"state": s})
			return v
		}
		adm, cmp, exp, cnc = state("admitted"), state("completed"), state("expired"), state("cancelled")
		balanced = adm == cmp+exp+cnc
		if !balanced {
			time.Sleep(10 * time.Millisecond)
		}
	}

	m := ob.Snapshot().Metrics
	fmt.Fprintln(w, "  fairness metrics:")
	for _, st := range []string{"admitted", "completed", "expired", "cancelled"} {
		v, _ := m.CounterSeries("pool_tickets_total", map[string]string{"state": st})
		fmt.Fprintf(w, "    pool_tickets_total{state=%q} %6d\n", st, v)
	}
	for _, cls := range []string{"flooder", "default"} {
		if v, ok := m.CounterSeries("pool_quota_sheds_total", map[string]string{"user_class": cls}); ok {
			fmt.Fprintf(w, "    pool_quota_sheds_total{user_class=%q} %6d\n", cls, v)
		}
	}
	for _, where := range []string{"queued", "running", "draining"} {
		if v, ok := m.CounterSeries("pool_deadline_expiries_total", map[string]string{"where": where}); ok {
			fmt.Fprintf(w, "    pool_deadline_expiries_total{where=%q} %6d\n", where, v)
		}
	}
	fmt.Fprintf(w, "    pool_queue_wait_seconds count %d\n",
		m.Histograms["pool_queue_wait_seconds"].Count)
	if !balanced {
		fmt.Fprintf(w, "  ticket ledger: IMBALANCED admitted=%d vs completed+expired+cancelled=%d\n",
			adm, cmp+exp+cnc)
		return fmt.Errorf("fairness drill: ticket ledger imbalanced")
	}
	fmt.Fprintf(w, "  ticket ledger: balanced (admitted %d == completed %d + expired %d + cancelled %d)\n",
		adm, cmp, exp, cnc)
	return nil
}

// journalBuf is an in-memory journal target (the drill's "disk").
type journalBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *journalBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *journalBuf) Sync() error { return nil }

func (b *journalBuf) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// recoveryDrill is the kill/restart exercise behind the crash-safety
// claim: drive the ticketed workload with the journal's writer cut
// mid-record at a seed-derived byte budget (the kill -9), restart the
// pool from the surviving prefix, drain it, and check that the
// conservation ledger balances across the crash. With -metrics-addr
// the run is scrapeable (pool_journal_records_total,
// pool_journal_bytes_total, pool_recovery_replayed_total); -journal
// writes the recovered pool's own journal to a file.
func recoveryDrill(w io.Writer, seed uint64, journalPath string, ob *obs.Observer, gate *readyGate) error {
	fmt.Fprintln(w, "=== portal recovery drill (write-ahead journal, crash mid-record) ===")
	const users, jobsPerUser = 6, 20
	input := "2 cg\n2 -1\n-1 2\n1 1\n"
	workload := func(j *portal.Journal, ob *obs.Observer) *portal.Pool {
		p := portal.NewPool(portal.PoolConfig{
			Workers: 4, QueueDepth: 64, Journal: j, Seed: seed,
		})
		p.SetObserver(ob)
		// A deterministic ~1ms run time keeps several tickets genuinely
		// mid-flight at the cut, so the restart has work to replay.
		slow := fault.Wrap(portal.AxbTool(), seed,
			fault.Config{Slow: 1, SlowDelay: time.Millisecond})
		if err := p.Register(slow); err != nil {
			panic(err) // fresh pool, static tool: cannot collide
		}
		var wg sync.WaitGroup
		for u := 0; u < users; u++ {
			wg.Add(1)
			go func(u int) {
				defer wg.Done()
				user := fmt.Sprintf("participant-%03d", u)
				for j := 0; j < jobsPerUser; j++ {
					p.Submit(user, "axb", input)
				}
			}(u)
		}
		wg.Wait()
		return p
	}

	// Probe one clean run (throwaway observer) to anchor the crash
	// budget at a real byte position of this workload's journal.
	probe := &journalBuf{}
	workload(portal.NewJournal(probe, portal.JournalOpts{}), obs.NewObserver(nil)).Close()
	base := len(probe.Bytes())
	budget := base * int(3+seed%5) / 8

	// First life: the journal's writer dies mid-record at the budget;
	// the pool itself keeps serving (availability over durability).
	ws := &journalBuf{}
	cw := fault.NewCrashWriter(ws, budget)
	p1 := workload(portal.NewJournal(cw, portal.JournalOpts{CompactEvery: 32}), ob)
	rec1, _ := p1.Journal().Stats()
	jerr := p1.Journal().Err()
	p1.Close() // the dead process analogue: nothing past the cut survives
	if !cw.Crashed() || jerr == nil {
		return fmt.Errorf("recovery drill: crash budget %d of %d bytes never hit", budget, base)
	}
	fmt.Fprintf(w, "  first life : %d users x %d jobs (seed %d); journal cut mid-record at byte %d of %d\n",
		users, jobsPerUser, seed, budget, base)
	fmt.Fprintf(w, "               journal wedged after %d durable records: %v\n", rec1, jerr)

	// Restart: recover from exactly the bytes that reached "disk",
	// journaling the second life to -journal (or memory).
	var second portal.WriteSyncer = &journalBuf{}
	dest := "in-memory"
	if journalPath != "" {
		f, err := os.Create(journalPath)
		if err != nil {
			return err
		}
		defer f.Close()
		second = f
		dest = journalPath
	}
	p2, rep, err := portal.RecoverPool(portal.PoolConfig{
		Workers: 4, QueueDepth: 64, Seed: seed,
		Journal:  portal.NewJournal(second, portal.JournalOpts{CompactEvery: 32}),
		Observer: ob,
	}, bytes.NewReader(ws.Bytes()), portal.AxbTool())
	if err != nil {
		return fmt.Errorf("recovery drill: %w", err)
	}
	gate.set(p2.Ready)
	fmt.Fprintf(w, "  restart    : replayed %d records (%d bytes), discarded %d torn tail bytes, snapshot used: %v\n",
		rep.Records, rep.Bytes, rep.TornBytes, rep.SnapshotUsed)
	fmt.Fprintf(w, "  dispositions: requeued %d, rerun (at-least-once) %d, expired %d, orphaned %d; history: %d users, %d entries\n",
		rep.Requeued, rep.Rerun, rep.Expired, rep.Orphaned, rep.HistoryUsers, rep.HistoryEntries)
	fmt.Fprintf(w, "  second life: journaling to %s\n", dest)
	gate.set(nil)
	p2.Close() // drain every restored ticket to a terminal state

	m := ob.Snapshot().Metrics
	fmt.Fprintln(w, "  journal metrics:")
	for _, k := range []string{"admit", "start", "done", "snapshot", "shed"} {
		v, _ := m.CounterSeries("pool_journal_records_total", map[string]string{"kind": k})
		fmt.Fprintf(w, "    pool_journal_records_total{kind=%q} %6d\n", k, v)
	}
	fmt.Fprintf(w, "    %-36s %6d\n", "pool_journal_bytes_total", m.Counters["pool_journal_bytes_total"])
	fmt.Fprintf(w, "    %-36s %6d\n", "pool_journal_errors_total", m.Counters["pool_journal_errors_total"])
	for _, d := range []string{"requeued", "rerun", "expired", "orphaned"} {
		if v, ok := m.CounterSeries("pool_recovery_replayed_total", map[string]string{"disposition": d}); ok {
			fmt.Fprintf(w, "    pool_recovery_replayed_total{disposition=%q} %6d\n", d, v)
		}
	}

	led := p2.Ledger()
	if !led.Balanced() {
		fmt.Fprintf(w, "  ticket ledger: IMBALANCED %+v\n", led)
		return fmt.Errorf("recovery drill: ticket ledger imbalanced across the crash")
	}
	fmt.Fprintf(w, "  ticket ledger: balanced across the crash (admitted %d == completed %d + expired %d + cancelled %d + replayed %d)\n",
		led.Admitted, led.Completed, led.Expired, led.Cancelled, led.Replayed)
	return nil
}
