package main

import (
	"os"
	"strings"
	"testing"
)

func TestMoocsimFunnel(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-fig", "8"}, strings.NewReader(""), &out, &errb)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errb.String())
	}
	if !strings.Contains(out.String(), "participation funnel") {
		t.Fatalf("output = %q, want funnel", out.String())
	}
}

func TestMoocsimPortalDrill(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-fig", "portal", "-seed", "3"}, strings.NewReader(""), &out, &errb)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{
		"portal resilience drill",
		"injected faults per tool",
		"resilience counters:",
		"pool_jobs_total",
		"breaker state by tool:",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("portal report missing %q:\n%s", want, s)
		}
	}
}

func TestMoocsimFairnessDrill(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-fig", "fairness", "-seed", "5"}, strings.NewReader(""), &out, &errb)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{
		"portal fairness drill",
		"per-class outcomes:",
		"hot (flooder)",
		"hot completion share:",
		"pool_tickets_total",
		"pool_quota_sheds_total{user_class=\"flooder\"}",
		"pool_deadline_expiries_total{where=\"queued\"}",
		"pool_queue_wait_seconds count",
		"ticket ledger: balanced",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("fairness report missing %q:\n%s", want, s)
		}
	}
}

func TestMoocsimRecoveryDrill(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-fig", "recovery", "-seed", "7"}, strings.NewReader(""), &out, &errb)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{
		"portal recovery drill",
		"journal cut mid-record",
		"journal wedged after",
		"discarded",
		"torn tail bytes",
		"dispositions:",
		"pool_journal_records_total{kind=\"admit\"}",
		"pool_journal_bytes_total",
		"pool_recovery_replayed_total{disposition=\"rerun\"}",
		"ticket ledger: balanced across the crash",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("recovery report missing %q:\n%s", want, s)
		}
	}
}

func TestMoocsimRecoveryJournalFile(t *testing.T) {
	path := t.TempDir() + "/drill.wal"
	var out, errb strings.Builder
	code := run([]string{"-fig", "recovery", "-seed", "3", "-journal", path},
		strings.NewReader(""), &out, &errb)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errb.String())
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("second-life journal file is empty")
	}
	if !strings.Contains(out.String(), path) {
		t.Errorf("report does not name the journal file:\n%s", out.String())
	}
}

func TestMoocsimBadFlag(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-bogus"}, strings.NewReader(""), &out, &errb); code != 2 {
		t.Fatalf("code=%d, want 2", code)
	}
}
