package main

import (
	"strings"
	"testing"
)

const staInput = `.model fixture
.inputs a b c
.outputs z
.names a b t
11 1
.names t c z
1- 1
-1 1
.end
`

func TestSTAReportsTiming(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-hist", "3"}, strings.NewReader(staInput), &out, &errb)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "gates=") || !strings.Contains(s, "slack histogram:") {
		t.Fatalf("output = %q, want timing report with histogram", s)
	}
}

func TestSTABadInput(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, strings.NewReader("not blif\n"), &out, &errb); code != 1 {
		t.Fatalf("code=%d, want 1 (stderr=%q)", code, errb.String())
	}
}

func TestSTABadFlag(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-bogus"}, strings.NewReader(""), &out, &errb); code != 2 {
		t.Fatalf("code=%d, want 2", code)
	}
}
