// Command sta reads a BLIF network (stdin or file argument), runs the
// full flow through technology mapping, and prints the static timing
// report: arrivals, slacks, the critical path, and a slack histogram.
// With -wire, Elmore wire delays from the routed design are included.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"vlsicad"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sta", flag.ContinueOnError)
	fs.SetOutput(stderr)
	wire := fs.Bool("wire", false, "include Elmore wire delays from routing")
	buckets := fs.Int("hist", 5, "slack histogram buckets (0 disables)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "sta:", err)
		return 1
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		in = f
	}
	flow, err := vlsicad.RunFlow(in, vlsicad.FlowOpts{WireModel: *wire})
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "gates=%d area=%.1f\n", len(flow.Mapping.Matches), flow.Area)
	fmt.Fprint(stdout, flow.Timing)
	if *buckets > 0 {
		counts, edges := flow.Timing.SlackHistogram(*buckets)
		fmt.Fprintln(stdout, "slack histogram:")
		for i, c := range counts {
			fmt.Fprintf(stdout, "  [%7.2f, %7.2f) %4d %s\n",
				edges[i], edges[i+1], c, strings.Repeat("#", c))
		}
	}
	return 0
}
