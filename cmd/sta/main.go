// Command sta reads a BLIF network (stdin or file argument), runs the
// full flow through technology mapping, and prints the static timing
// report: arrivals, slacks, the critical path, and a slack histogram.
// With -wire, Elmore wire delays from the routed design are included.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vlsicad"
)

func main() {
	wire := flag.Bool("wire", false, "include Elmore wire delays from routing")
	buckets := flag.Int("hist", 5, "slack histogram buckets (0 disables)")
	flag.Parse()

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sta:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	flow, err := vlsicad.RunFlow(in, vlsicad.FlowOpts{WireModel: *wire})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sta:", err)
		os.Exit(1)
	}
	fmt.Printf("gates=%d area=%.1f\n", len(flow.Mapping.Matches), flow.Area)
	fmt.Print(flow.Timing)
	if *buckets > 0 {
		counts, edges := flow.Timing.SlackHistogram(*buckets)
		fmt.Println("slack histogram:")
		for i, c := range counts {
			fmt.Printf("  [%7.2f, %7.2f) %4d %s\n",
				edges[i], edges[i+1], c, strings.Repeat("#", c))
		}
	}
}
