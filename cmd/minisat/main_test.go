package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runMiniSAT(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestMiniSATSat(t *testing.T) {
	code, out, errb := runMiniSAT(t, "p cnf 2 2\n1 2 0\n-1 0\n")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errb)
	}
	if !strings.HasPrefix(out, "s SATISFIABLE") || !strings.Contains(out, "v -1 2 0") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestMiniSATUnsat(t *testing.T) {
	code, out, _ := runMiniSAT(t, "p cnf 1 2\n1 0\n-1 0\n")
	if code != 0 || !strings.HasPrefix(out, "s UNSATISFIABLE") {
		t.Fatalf("code=%d output:\n%s", code, out)
	}
}

func TestMiniSATFileArg(t *testing.T) {
	path := filepath.Join(t.TempDir(), "inst.cnf")
	if err := os.WriteFile(path, []byte("p cnf 1 1\n1 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runMiniSAT(t, "", path)
	if code != 0 || !strings.HasPrefix(out, "s SATISFIABLE") {
		t.Fatalf("code=%d output:\n%s", code, out)
	}
}

func TestMiniSATErrors(t *testing.T) {
	if code, _, errb := runMiniSAT(t, "not dimacs at all"); code != 1 || !strings.Contains(errb, "minisat:") {
		t.Errorf("garbage input: code=%d stderr=%q", code, errb)
	}
	if code, _, _ := runMiniSAT(t, "", filepath.Join(t.TempDir(), "missing.cnf")); code != 1 {
		t.Errorf("missing file: code=%d, want 1", code)
	}
}
