// Command minisat solves a DIMACS CNF instance from stdin (or a file
// argument), printing the verdict, a model when satisfiable, and
// solver statistics — the MOOC's miniSAT portal.
package main

import (
	"fmt"
	"io"
	"os"

	"vlsicad/internal/portal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	var src []byte
	var err error
	if len(args) > 0 {
		src, err = os.ReadFile(args[0])
	} else {
		src, err = io.ReadAll(stdin)
	}
	if err != nil {
		fmt.Fprintln(stderr, "minisat:", err)
		return 1
	}
	out, err := portal.MiniSATTool().Run(string(src), make(chan struct{}))
	if err != nil {
		fmt.Fprintln(stderr, "minisat:", err)
		return 1
	}
	fmt.Fprint(stdout, out)
	return 0
}
