// Command minisat solves a DIMACS CNF instance from stdin (or a file
// argument), printing the verdict, a model when satisfiable, and
// solver statistics — the MOOC's miniSAT portal.
package main

import (
	"fmt"
	"io"
	"os"

	"vlsicad/internal/portal"
)

func main() {
	var src []byte
	var err error
	if len(os.Args) > 1 {
		src, err = os.ReadFile(os.Args[1])
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "minisat:", err)
		os.Exit(1)
	}
	out, err := portal.MiniSATTool().Run(string(src), make(chan struct{}))
	if err != nil {
		fmt.Fprintln(os.Stderr, "minisat:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
