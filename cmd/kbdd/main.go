// Command kbdd is the course's BDD-based Boolean calculator: it reads
// a script from stdin (or a file argument) and prints the results,
// exactly as the MOOC's kbdd web portal did.
//
// Usage:
//
//	kbdd [script.txt]
//
// See internal/portal.KBDD for the command language.
package main

import (
	"fmt"
	"io"
	"os"

	"vlsicad/internal/portal"
)

func main() {
	var src []byte
	var err error
	if len(os.Args) > 1 {
		src, err = os.ReadFile(os.Args[1])
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "kbdd:", err)
		os.Exit(1)
	}
	k := portal.NewKBDD(64)
	runErr := k.RunScript(string(src))
	fmt.Print(k.Output())
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "kbdd:", runErr)
		os.Exit(1)
	}
}
