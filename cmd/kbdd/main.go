// Command kbdd is the course's BDD-based Boolean calculator: it reads
// a script from stdin (or a file argument) and prints the results,
// exactly as the MOOC's kbdd web portal did.
//
// Usage:
//
//	kbdd [script.txt]
//
// See internal/portal.KBDD for the command language.
package main

import (
	"fmt"
	"io"
	"os"

	"vlsicad/internal/portal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	var src []byte
	var err error
	if len(args) > 0 {
		src, err = os.ReadFile(args[0])
	} else {
		src, err = io.ReadAll(stdin)
	}
	if err != nil {
		fmt.Fprintln(stderr, "kbdd:", err)
		return 1
	}
	k := portal.NewKBDD(64)
	runErr := k.RunScript(string(src))
	fmt.Fprint(stdout, k.Output())
	if runErr != nil {
		fmt.Fprintln(stderr, "kbdd:", runErr)
		return 1
	}
	return 0
}
