package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runKBDD(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestKBDDStdinScript(t *testing.T) {
	code, out, errb := runKBDD(t, "var a b c\nf = a & b | c\nsatcount f\n")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errb)
	}
	if !strings.Contains(out, "satcount(f) = 5") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestKBDDFileArg(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.kbdd")
	if err := os.WriteFile(path, []byte("var x\ntautology x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runKBDD(t, "", path)
	if code != 0 || !strings.Contains(out, "false") {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestKBDDErrors(t *testing.T) {
	// A bad line aborts with exit 1 but earlier output is still printed.
	code, out, errb := runKBDD(t, "var a\nprint a\nbogus command here\n")
	if code != 1 {
		t.Fatalf("code=%d, want 1", code)
	}
	if !strings.Contains(out, "a") || !strings.Contains(errb, "kbdd:") {
		t.Fatalf("out=%q stderr=%q", out, errb)
	}
	if code, _, _ := runKBDD(t, "", filepath.Join(t.TempDir(), "missing.kbdd")); code != 1 {
		t.Errorf("missing file: code=%d, want 1", code)
	}
}
