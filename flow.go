// Package vlsicad is the public facade of the VLSI CAD: Logic to
// Layout reproduction: a complete ASIC flow — multi-level synthesis,
// formal verification, technology mapping, placement, routing and
// static timing — assembled from the course's engines under
// internal/. The facade is what the examples and command-line tools
// drive; each stage is also available individually through its
// package.
package vlsicad

import (
	"fmt"
	"io"
	"math"

	"vlsicad/internal/drc"
	"vlsicad/internal/mls"
	"vlsicad/internal/netlist"
	"vlsicad/internal/place"
	"vlsicad/internal/route"
	"vlsicad/internal/techmap"
	"vlsicad/internal/timing"
)

// FlowOpts configures RunFlow.
type FlowOpts struct {
	// SkipSynthesis leaves the network as parsed.
	SkipSynthesis bool
	// MapObjective selects area (default) or delay mapping.
	MapObjective techmap.Objective
	// Utilization sets placement density (cells per slot); default 0.5.
	Utilization float64
	// RouteScale sets routing tracks per placement slot; default 3.
	RouteScale int
	// Seed drives the randomized stages (routing rip-up order).
	Seed int64
	// WireModel enables Elmore wire delays in timing (per routed net).
	WireModel bool
	// CheckDRC runs design-rule checking on the routed wires.
	CheckDRC bool
	// VerifyMapping formally checks the mapped gate netlist against
	// the synthesized network (BDD equivalence; costly on very wide
	// input spaces).
	VerifyMapping bool
}

// Flow is the result of a full run: every intermediate artifact plus
// summary metrics.
type Flow struct {
	Source      *netlist.Network
	Synthesized *netlist.Network
	Equivalent  bool // synthesis verified against the source

	Subject *techmap.Subject
	Mapping *techmap.Result

	PlaceProblem *place.Problem
	Placement    *place.Placement

	Grid    *route.Grid
	Nets    []route.Net
	Routing *route.Result

	Timing *timing.Report

	// DRC holds design-rule violations of the routed wires (empty
	// unless FlowOpts.CheckDRC was set and the layout is dirty).
	DRC []drc.Violation

	// Metrics.
	LiteralsBefore int
	LiteralsAfter  int
	Area           float64
	HPWL           float64
	WireLength     int
	Vias           int
	CriticalDelay  float64
}

// RunFlow executes the full logic-to-layout flow on a BLIF model.
func RunFlow(r io.Reader, opts FlowOpts) (*Flow, error) {
	nw, err := netlist.ParseBLIF(r)
	if err != nil {
		return nil, err
	}
	return RunFlowOnNetwork(nw, opts)
}

// RunFlowOnNetwork is RunFlow starting from an in-memory network.
func RunFlowOnNetwork(nw *netlist.Network, opts FlowOpts) (*Flow, error) {
	if opts.Utilization <= 0 || opts.Utilization > 1 {
		opts.Utilization = 0.5
	}
	if opts.RouteScale <= 0 {
		opts.RouteScale = 3
	}
	f := &Flow{Source: nw.Clone(), LiteralsBefore: nw.Literals()}

	// 1. Synthesis (Weeks 3-4): extract common divisors, simplify,
	// sweep; verify with BDD equivalence (Week 2).
	work := nw.Clone()
	if !opts.SkipSynthesis {
		mls.ExtractKernels(work, "fx_", 10)
		mls.Simplify(work)
		mls.SweepConstants(work)
	}
	f.Synthesized = work
	f.LiteralsAfter = work.Literals()
	eq, err := netlist.EquivalentBDD(nw, work)
	if err != nil {
		return nil, fmt.Errorf("vlsicad: synthesis verification: %w", err)
	}
	f.Equivalent = eq
	if !eq {
		return f, fmt.Errorf("vlsicad: synthesis changed the function")
	}

	// 2. Technology mapping (Week 5).
	subj, err := techmap.FromNetwork(work)
	if err != nil {
		return nil, err
	}
	f.Subject = subj
	mapping, err := techmap.Map(subj, techmap.StandardLibrary(), opts.MapObjective)
	if err != nil {
		return nil, err
	}
	f.Mapping = mapping
	f.Area = mapping.Area
	if opts.VerifyMapping {
		mapped, err := techmap.ToNetwork(subj, mapping, techmap.StandardLibrary(),
			work.Name+"_mapped", work.Inputs, work.Outputs)
		if err != nil {
			return nil, fmt.Errorf("vlsicad: mapped-netlist export: %w", err)
		}
		eqM, err := netlist.EquivalentBDD(work, mapped)
		if err != nil {
			return nil, fmt.Errorf("vlsicad: mapping verification: %w", err)
		}
		if !eqM {
			return f, fmt.Errorf("vlsicad: technology mapping changed the function")
		}
	}

	// 3. Placement (Week 6): one cell per mapped gate; nets from the
	// gate-level connectivity; pads for the primary inputs/outputs.
	prob, cellOf, err := placementFromMapping(work, subj, mapping, opts.Utilization)
	if err != nil {
		return nil, err
	}
	f.PlaceProblem = prob
	global, err := place.Quadratic(prob, place.QuadraticOpts{})
	if err != nil {
		return nil, err
	}
	legal, err := place.Legalize(prob, global)
	if err != nil {
		return nil, err
	}
	if err := place.CheckLegal(prob, legal); err != nil {
		return nil, fmt.Errorf("vlsicad: legalization: %w", err)
	}
	f.Placement = legal
	f.HPWL = prob.HPWL(legal)

	// 4. Routing (Week 7).
	grid, nets := routingFromPlacement(prob, legal, opts.RouteScale, opts.Seed)
	f.Grid = grid
	f.Nets = nets
	f.Routing = route.RouteAll(grid, nets, route.Opts{
		Alg:         route.AStar,
		Order:       route.OrderShortFirst,
		RipupRounds: 5,
		Seed:        opts.Seed,
	})
	f.WireLength = f.Routing.Length
	f.Vias = f.Routing.Vias
	if opts.CheckDRC {
		// Pitch 6 with half-pitch wires keeps legally routed tracks
		// clean under the default 2-unit rules.
		shapes := drc.WiresToShapes(f.Routing.Paths, 6)
		f.DRC = drc.Check(shapes, drc.DefaultRules())
	}

	// 5. Static timing (Week 8) over the mapped gates, optionally with
	// Elmore wire delays from the routed wirelengths.
	rep, err := timingFromMapping(work, subj, mapping, f, cellOf, opts.WireModel)
	if err != nil {
		return nil, err
	}
	f.Timing = rep
	f.CriticalDelay = rep.MaxArrival
	return f, nil
}

// placementFromMapping builds the placement instance: one movable
// cell per emitted gate, boundary pads for the PIs and POs.
func placementFromMapping(nw *netlist.Network, subj *techmap.Subject, mp *techmap.Result, util float64) (*place.Problem, map[int]int, error) {
	cellOf := map[int]int{} // subject root id -> cell index
	for i, m := range mp.Matches {
		cellOf[m.Root] = i
	}
	n := len(mp.Matches)
	side := int(math.Ceil(math.Sqrt(float64(n) / util)))
	if side < 2 {
		side = 2
	}
	prob := &place.Problem{NCells: n, W: float64(side), H: float64(side)}

	padOf := map[string]int{}
	addPad := func(name string, i, total int) int {
		if id, ok := padOf[name]; ok {
			return id
		}
		t := float64(i) / float64(total)
		var x, y float64
		switch i % 4 {
		case 0:
			x, y = t*prob.W, 0
		case 1:
			x, y = prob.W, t*prob.H
		case 2:
			x, y = (1-t)*prob.W, prob.H
		default:
			x, y = 0, (1-t)*prob.H
		}
		id := len(prob.Pads)
		prob.Pads = append(prob.Pads, place.Pad{Name: name, X: x, Y: y})
		padOf[name] = id
		return id
	}
	ios := append([]string(nil), nw.Inputs...)
	ios = append(ios, nw.Outputs...)
	for i, name := range ios {
		addPad(name, i, len(ios))
	}

	// A net per driving subject node: driver gate or input leaf to
	// all consuming gates.
	consumers := map[int][]int{} // subject node id -> consuming cells
	for ci, m := range mp.Matches {
		for _, leaf := range m.Leaves {
			consumers[leaf] = append(consumers[leaf], ci)
		}
	}
	for node, cons := range consumers {
		net := place.Net{}
		seen := map[int]bool{}
		for _, c := range cons {
			if !seen[c] {
				net.Cells = append(net.Cells, c)
				seen[c] = true
			}
		}
		if dc, ok := cellOf[node]; ok {
			if !seen[dc] {
				net.Cells = append(net.Cells, dc)
			}
		} else {
			// Leaf is a primary input (or constant): pad if known.
			name := subj.Nodes[node].Name
			if id, ok := padOf[name]; ok {
				net.Pads = append(net.Pads, id)
			}
		}
		if len(net.Cells)+len(net.Pads) >= 2 {
			prob.Nets = append(prob.Nets, net)
		}
	}
	// Output pads connect to their driving gates.
	for _, out := range nw.Outputs {
		root, ok := subj.Roots[out]
		if !ok {
			continue
		}
		if c, ok := cellOf[root]; ok {
			prob.Nets = append(prob.Nets, place.Net{Cells: []int{c}, Pads: []int{padOf[out]}})
		}
	}
	if err := prob.Validate(); err != nil {
		return nil, nil, err
	}
	return prob, cellOf, nil
}

// routingFromPlacement derives two-pin routing requests from the
// placement (each placement net connects its extreme pins).
func routingFromPlacement(prob *place.Problem, pl *place.Placement, scale int, seed int64) (*route.Grid, []route.Net) {
	g := route.NewGrid(int(prob.W)*scale+2, int(prob.H)*scale+2, route.DefaultCost())
	used := map[route.Point]bool{}
	pin := func(x, y float64) (route.Point, bool) {
		base := route.Point{X: int(x * float64(scale)), Y: int(y * float64(scale)), L: 0}
		for dy := 0; dy < scale; dy++ {
			for dx := 0; dx < scale; dx++ {
				p := route.Point{X: base.X + dx, Y: base.Y + dy, L: 0}
				if g.In(p) && !used[p] {
					used[p] = true
					return p, true
				}
			}
		}
		return route.Point{}, false
	}
	var nets []route.Net
	for ni, n := range prob.Nets {
		type pt struct{ x, y float64 }
		var pts []pt
		for _, c := range n.Cells {
			pts = append(pts, pt{pl.X[c], pl.Y[c]})
		}
		for _, pd := range n.Pads {
			x := prob.Pads[pd].X
			y := prob.Pads[pd].Y
			// Clamp pad coordinates inside the grid.
			if x >= prob.W {
				x = prob.W - 0.5
			}
			if y >= prob.H {
				y = prob.H - 0.5
			}
			pts = append(pts, pt{x, y})
		}
		if len(pts) < 2 {
			continue
		}
		a, okA := pin(pts[0].x, pts[0].y)
		b, okB := pin(pts[len(pts)-1].x, pts[len(pts)-1].y)
		if !okA || !okB || a == b {
			continue
		}
		nets = append(nets, route.Net{Name: fmt.Sprintf("n%d", ni), A: a, B: b})
	}
	return g, nets
}

// timingFromMapping builds the gate-level timing graph, adding Elmore
// wire delays per routed net when wireModel is set.
func timingFromMapping(nw *netlist.Network, subj *techmap.Subject, mp *techmap.Result, f *Flow, cellOf map[int]int, wireModel bool) (*timing.Report, error) {
	delayOf := map[string]float64{}
	for _, g := range techmap.StandardLibrary() {
		delayOf[g.Name] = g.Delay
	}
	sigName := func(id int) string {
		n := subj.Nodes[id]
		if n.Kind == techmap.KInput {
			return n.Name
		}
		return fmt.Sprintf("n%d", id)
	}
	// Per-net wire delay from routed wirelength (uniform RC line).
	wireDelay := 0.0
	if wireModel && f.Routing != nil && len(f.Routing.Paths) > 0 {
		total := 0
		for _, p := range f.Routing.Paths {
			total += p.Wirelength()
		}
		avg := float64(total) / float64(len(f.Routing.Paths))
		t := timing.WireRC(1.0, 0.05, 0.1, int(avg)+1, 4, 0.2)
		d, err := t.SinkDelay()
		if err != nil {
			return nil, err
		}
		wireDelay = d
	}
	g := &timing.Graph{
		PIArrival:  map[string]float64{},
		PORequired: map[string]float64{},
	}
	for _, in := range subj.InputNames() {
		g.PIArrival[in] = 0
	}
	for _, m := range mp.Matches {
		var ins []string
		for _, leaf := range m.Leaves {
			ins = append(ins, sigName(leaf))
		}
		g.Gates = append(g.Gates, timing.Gate{
			Name:   fmt.Sprintf("%s_%d", m.Gate, m.Root),
			Output: sigName(m.Root),
			Inputs: ins,
			Delay:  delayOf[m.Gate] + wireDelay,
		})
	}
	// Outputs: signals of the mapped roots. Required times are set to
	// the worst arrival (two-pass), so the critical path reads slack 0
	// — the course's reporting convention when no clock is given.
	for _, root := range subj.Roots {
		sig := sigName(root)
		if _, isPI := g.PIArrival[sig]; isPI {
			continue // output is a feedthrough of an input
		}
		g.PORequired[sig] = 1e9
	}
	if len(g.PORequired) == 0 {
		return &timing.Report{Signals: map[string]timing.SignalTiming{}}, nil
	}
	first, err := timing.Analyze(g)
	if err != nil {
		return nil, err
	}
	for sig := range g.PORequired {
		g.PORequired[sig] = first.MaxArrival
	}
	return timing.Analyze(g)
}
