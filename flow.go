// Package vlsicad is the public facade of the VLSI CAD: Logic to
// Layout reproduction: a complete ASIC flow — multi-level synthesis,
// formal verification, technology mapping, placement, routing and
// static timing — assembled from the course's engines under
// internal/. The facade is what the examples and command-line tools
// drive; each stage is also available individually through its
// package.
package vlsicad

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"vlsicad/internal/drc"
	"vlsicad/internal/mls"
	"vlsicad/internal/netlist"
	"vlsicad/internal/obs"
	"vlsicad/internal/place"
	"vlsicad/internal/route"
	"vlsicad/internal/techmap"
	"vlsicad/internal/timing"
)

// FlowOpts configures RunFlow.
type FlowOpts struct {
	// SkipSynthesis leaves the network as parsed.
	SkipSynthesis bool
	// MapObjective selects area (default) or delay mapping.
	MapObjective techmap.Objective
	// Utilization sets placement density (cells per slot); default 0.5.
	Utilization float64
	// RouteScale sets routing tracks per placement slot; default 3.
	RouteScale int
	// Seed drives the randomized stages (routing rip-up order).
	Seed int64
	// RouteWorkers sets the routing stage's worker count: 0 means
	// GOMAXPROCS, 1 forces the serial engine. The routed Result is
	// byte-identical for every value — parallelism changes only wall
	// clock, never the answer.
	RouteWorkers int
	// AnnealPlace refines the legalized placement with simulated
	// annealing (place.Anneal, incremental cost, parallel chains). The
	// refinement is kept only when it improves HPWL, so enabling it
	// never worsens the layout.
	AnnealPlace bool
	// PlaceChains sets the annealing chain count (0 means 4). The
	// chain count — never the worker count — determines the result.
	PlaceChains int
	// PlaceWorkers bounds the placement stage's concurrency — the
	// quadratic placer's per-level region solves and the annealing
	// chains: 0 means GOMAXPROCS. Like RouteWorkers it changes only
	// wall clock; the placement is byte-identical for every value.
	PlaceWorkers int
	// WireModel enables Elmore wire delays in timing (per routed net).
	WireModel bool
	// CheckDRC runs design-rule checking on the routed wires.
	CheckDRC bool
	// VerifyMapping formally checks the mapped gate netlist against
	// the synthesized network (BDD equivalence; costly on very wide
	// input spaces).
	VerifyMapping bool
	// Obs receives per-stage spans, latency histograms and result
	// gauges for this run. When nil the process-wide obs.Default()
	// observer is used; inject an observer built on a fake clock for
	// byte-for-byte deterministic snapshots.
	Obs *obs.Observer
}

// StageTiming is one row of the flow's timing table.
type StageTiming struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration_ns"`
}

// Flow is the result of a full run: every intermediate artifact plus
// summary metrics.
type Flow struct {
	Source      *netlist.Network
	Synthesized *netlist.Network
	Equivalent  bool // synthesis verified against the source

	Subject *techmap.Subject
	Mapping *techmap.Result

	PlaceProblem *place.Problem
	Placement    *place.Placement

	Grid    *route.Grid
	Nets    []route.Net
	Routing *route.Result

	Timing *timing.Report

	// DRC holds design-rule violations of the routed wires (empty
	// unless FlowOpts.CheckDRC was set and the layout is dirty).
	DRC []drc.Violation

	// Metrics.
	LiteralsBefore int
	LiteralsAfter  int
	Area           float64
	HPWL           float64
	WireLength     int
	Vias           int
	CriticalDelay  float64

	// Stages is the per-stage timing table (parse when RunFlow read
	// the input, then synth, verify, map, place, route, drc, timing),
	// in execution order.
	Stages []StageTiming
	// Trace holds the finished spans of this run (the flow root span
	// and its per-stage children), in start order.
	Trace []obs.SpanRecord
}

// StageTable renders Stages as an aligned text table (the `vlsicad
// -stats` view).
func (f *Flow) StageTable() string {
	var b strings.Builder
	var total time.Duration
	for _, s := range f.Stages {
		total += s.Duration
	}
	fmt.Fprintf(&b, "%-10s %14s %7s\n", "stage", "seconds", "share")
	for _, s := range f.Stages {
		share := 0.0
		if total > 0 {
			share = float64(s.Duration) / float64(total)
		}
		fmt.Fprintf(&b, "%-10s %14.6f %6.1f%%\n", s.Name, s.Duration.Seconds(), 100*share)
	}
	fmt.Fprintf(&b, "%-10s %14.6f\n", "total", total.Seconds())
	return b.String()
}

// RunFlow executes the full logic-to-layout flow on a BLIF model.
func RunFlow(r io.Reader, opts FlowOpts) (*Flow, error) {
	if opts.Obs == nil {
		opts.Obs = obs.Default()
	}
	ob := opts.Obs
	sp := ob.StartSpan("flow.parse")
	nw, err := netlist.ParseBLIF(r)
	d := sp.End()
	ob.HistogramVec("flow_stage_seconds", []string{"stage"}).With("parse").ObserveDuration(d)
	if err != nil {
		ob.CounterVec("flow_stage_errors_total", "stage").With("parse").Inc()
		return nil, err
	}
	f, ferr := RunFlowOnNetwork(nw, opts)
	if f != nil {
		f.Stages = append([]StageTiming{{Name: "parse", Duration: d}}, f.Stages...)
	}
	return f, ferr
}

// RunFlowOnNetwork is RunFlow starting from an in-memory network.
// Each stage runs inside a child span of one "flow" root span and
// feeds a per-stage latency histogram; the finished spans land in
// Flow.Trace and the timing table in Flow.Stages.
func RunFlowOnNetwork(nw *netlist.Network, opts FlowOpts) (*Flow, error) {
	if opts.Utilization <= 0 || opts.Utilization > 1 {
		opts.Utilization = 0.5
	}
	if opts.RouteScale <= 0 {
		opts.RouteScale = 3
	}
	ob := opts.Obs
	if ob == nil {
		ob = obs.Default()
	}
	f := &Flow{Source: nw.Clone(), LiteralsBefore: nw.Literals()}

	root := ob.StartSpan("flow")
	root.SetLabel("model", nw.Name)
	stageSeconds := ob.HistogramVec("flow_stage_seconds", []string{"stage"})
	stageErrors := ob.CounterVec("flow_stage_errors_total", "stage")
	// endStage closes a stage span and records its timing-table row.
	endStage := func(sp *obs.Span, name string, err error) {
		d := sp.End()
		f.Stages = append(f.Stages, StageTiming{Name: name, Duration: d})
		stageSeconds.With(name).ObserveDuration(d)
		if err != nil {
			stageErrors.With(name).Inc()
		}
	}
	// finish closes the root span, attaches the trace, and counts the
	// run; every return path goes through it.
	finish := func(ret *Flow, err error) (*Flow, error) {
		root.SetLabel("ok", strconv.FormatBool(err == nil))
		root.End()
		f.Trace = ob.Tracer().SnapshotSince(root.ID())
		ob.Counter("flow_runs_total").Inc()
		if err != nil {
			ob.Counter("flow_runs_failed").Inc()
		}
		return ret, err
	}

	// 1. Synthesis (Weeks 3-4): extract common divisors, simplify,
	// sweep; verify with BDD equivalence (Week 2).
	sp := root.StartChild("flow.synth")
	work := nw.Clone()
	if !opts.SkipSynthesis {
		mls.ExtractKernels(work, "fx_", 10)
		mls.Simplify(work)
		mls.SweepConstants(work)
	}
	f.Synthesized = work
	f.LiteralsAfter = work.Literals()
	endStage(sp, "synth", nil)

	sp = root.StartChild("flow.verify")
	eq, eqErr := netlist.EquivalentBDD(nw, work)
	f.Equivalent = eq
	var verr error
	switch {
	case eqErr != nil:
		verr = fmt.Errorf("vlsicad: synthesis verification: %w", eqErr)
	case !eq:
		verr = fmt.Errorf("vlsicad: synthesis changed the function")
	}
	endStage(sp, "verify", verr)
	if eqErr != nil {
		return finish(nil, verr)
	}
	if !eq {
		return finish(f, verr)
	}

	// 2. Technology mapping (Week 5).
	sp = root.StartChild("flow.map")
	subj, err := techmap.FromNetwork(work)
	if err != nil {
		endStage(sp, "map", err)
		return finish(nil, err)
	}
	f.Subject = subj
	mapping, err := techmap.Map(subj, techmap.StandardLibrary(), opts.MapObjective)
	if err != nil {
		endStage(sp, "map", err)
		return finish(nil, err)
	}
	f.Mapping = mapping
	f.Area = mapping.Area
	if opts.VerifyMapping {
		mapped, err := techmap.ToNetwork(subj, mapping, techmap.StandardLibrary(),
			work.Name+"_mapped", work.Inputs, work.Outputs)
		if err != nil {
			endStage(sp, "map", err)
			return finish(nil, fmt.Errorf("vlsicad: mapped-netlist export: %w", err))
		}
		eqM, err := netlist.EquivalentBDD(work, mapped)
		if err != nil {
			endStage(sp, "map", err)
			return finish(nil, fmt.Errorf("vlsicad: mapping verification: %w", err))
		}
		if !eqM {
			err = fmt.Errorf("vlsicad: technology mapping changed the function")
			endStage(sp, "map", err)
			return finish(f, err)
		}
	}
	endStage(sp, "map", nil)

	// 3. Placement (Week 6): one cell per mapped gate; nets from the
	// gate-level connectivity; pads for the primary inputs/outputs.
	sp = root.StartChild("flow.place")
	prob, cellOf, err := placementFromMapping(work, subj, mapping, opts.Utilization)
	if err != nil {
		endStage(sp, "place", err)
		return finish(nil, err)
	}
	f.PlaceProblem = prob
	// Level telemetry mirrors the route stage's wave idiom: one labeled
	// family (flow_quad_events_total{kind}) plus a child span per
	// bipartition level. OnLevel fires in level order on this
	// goroutine, so the series and spans are deterministic for any
	// PlaceWorkers value.
	quadEvents := ob.CounterVec("flow_quad_events_total", "kind")
	quadRegions, quadLeaves, quadIters :=
		quadEvents.With("regions"), quadEvents.With("leaves"), quadEvents.With("cg_iterations")
	global, err := place.Quadratic(prob, place.QuadraticOpts{
		Workers: opts.PlaceWorkers,
		OnLevel: func(ls place.QuadLevelStats) {
			lsp := sp.StartChild("flow.place.quad.level")
			lsp.SetLabel("level", strconv.Itoa(ls.Level))
			lsp.SetLabel("regions", strconv.Itoa(ls.Regions))
			lsp.SetLabel("cells", strconv.Itoa(ls.Cells))
			quadRegions.Add(int64(ls.Regions))
			quadLeaves.Add(int64(ls.Leaves))
			quadIters.Add(int64(ls.CGIterations))
			// The span's observer-clock duration keeps the histogram
			// deterministic under an injected fake clock (ls.Duration
			// is wall time and would not be).
			ob.Histogram("flow_quad_level_seconds").ObserveDuration(lsp.End())
		},
	})
	if err != nil {
		endStage(sp, "place", err)
		return finish(nil, err)
	}
	legal, err := place.Legalize(prob, global)
	if err != nil {
		endStage(sp, "place", err)
		return finish(nil, err)
	}
	if err := place.CheckLegal(prob, legal); err != nil {
		endStage(sp, "place", err)
		return finish(nil, fmt.Errorf("vlsicad: legalization: %w", err))
	}
	f.Placement = legal
	f.HPWL = prob.HPWL(legal)
	if opts.AnnealPlace {
		chains := opts.PlaceChains
		if chains <= 0 {
			chains = 4
		}
		// Chain telemetry mirrors the route stage's wave idiom: one
		// labeled family (flow_place_chain_events_total{kind}) plus a
		// child span per chain. OnChain fires in chain order after all
		// chains finish, so the series and spans are deterministic for
		// any PlaceWorkers value.
		chainEvents := ob.CounterVec("flow_place_chain_events_total", "kind")
		moves, accepted, recomputes :=
			chainEvents.With("moves"), chainEvents.With("accepted"), chainEvents.With("recomputes")
		res, aerr := place.Anneal(prob, place.AnnealOpts{
			Seed:    opts.Seed,
			Chains:  chains,
			Workers: opts.PlaceWorkers,
			Initial: legal,
			OnChain: func(cs place.ChainStats) {
				csp := sp.StartChild("flow.place.chain")
				csp.SetLabel("chain", strconv.Itoa(cs.Chain))
				csp.SetLabel("accepted", strconv.Itoa(cs.Accepted))
				csp.SetLabel("hpwl", strconv.FormatFloat(cs.HPWL, 'g', -1, 64))
				csp.End()
				moves.Add(int64(cs.Moves))
				accepted.Add(int64(cs.Accepted))
				recomputes.Add(int64(cs.Recomputes))
				ob.Histogram("flow_place_chain_seconds").ObserveDuration(cs.Duration)
			},
		})
		if aerr != nil {
			endStage(sp, "place", aerr)
			return finish(nil, fmt.Errorf("vlsicad: annealing: %w", aerr))
		}
		if res.HPWL < f.HPWL {
			legal = res.Placement
			f.Placement = legal
			f.HPWL = res.HPWL
		}
		ob.Gauge("flow_place_anneal_hpwl").Set(res.HPWL)
	}
	endStage(sp, "place", nil)

	// 4. Routing (Week 7): wave-parallel net routing on a bounded
	// worker pool. Per-wave telemetry lands in child spans and
	// counters; the Result itself is worker-count independent.
	sp = root.StartChild("flow.route")
	grid, nets := routingFromPlacement(prob, legal, opts.RouteScale, opts.Seed)
	f.Grid = grid
	f.Nets = nets
	workers := opts.RouteWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Wave telemetry: one labeled family instead of three flat
	// counters, so a scrape shows committed/conflict/requeue rates as
	// comparable series of flow_route_wave_events_total{kind}.
	waveEvents := ob.CounterVec("flow_route_wave_events_total", "kind")
	committed, conflicts, requeued :=
		waveEvents.With("committed"), waveEvents.With("conflict"), waveEvents.With("requeued")
	f.Routing = route.RouteAll(grid, nets, route.Opts{
		Alg:         route.AStar,
		Order:       route.OrderShortFirst,
		RipupRounds: 5,
		Seed:        opts.Seed,
		Workers:     workers,
		OnWave: func(ws route.WaveStats) {
			wsp := sp.StartChild("flow.route.wave")
			wsp.SetLabel("wave", strconv.Itoa(ws.Index))
			wsp.SetLabel("nets", strconv.Itoa(ws.Nets))
			wsp.SetLabel("committed", strconv.Itoa(ws.Committed))
			wsp.SetLabel("conflicts", strconv.Itoa(ws.Conflicts))
			wsp.SetLabel("requeued", strconv.Itoa(ws.Requeued))
			wsp.End()
			committed.Add(int64(ws.Committed))
			conflicts.Add(int64(ws.Conflicts))
			requeued.Add(int64(ws.Requeued))
			ob.Histogram("flow_route_wave_seconds").ObserveDuration(ws.Duration)
		},
	})
	f.WireLength = f.Routing.Length
	f.Vias = f.Routing.Vias
	endStage(sp, "route", nil)
	if opts.CheckDRC {
		sp = root.StartChild("flow.drc")
		// Pitch 6 with half-pitch wires keeps legally routed tracks
		// clean under the default 2-unit rules.
		shapes := drc.WiresToShapes(f.Routing.Paths, 6)
		f.DRC = drc.Check(shapes, drc.DefaultRules())
		endStage(sp, "drc", nil)
		ob.Counter("flow_drc_violations").Add(int64(len(f.DRC)))
		if len(f.DRC) > 0 {
			ob.Emit("flow.drc_violations", map[string]string{
				"model": nw.Name, "count": strconv.Itoa(len(f.DRC)),
			})
		}
	}

	// 5. Static timing (Week 8) over the mapped gates, optionally with
	// Elmore wire delays from the routed wirelengths.
	sp = root.StartChild("flow.timing")
	rep, err := timingFromMapping(work, subj, mapping, f, cellOf, opts.WireModel)
	endStage(sp, "timing", err)
	if err != nil {
		return finish(nil, err)
	}
	f.Timing = rep
	f.CriticalDelay = rep.MaxArrival

	// Result gauges: the most recent run's quality-of-results.
	ob.Gauge("flow_area").Set(f.Area)
	ob.Gauge("flow_hpwl").Set(f.HPWL)
	ob.Gauge("flow_wirelength").Set(float64(f.WireLength))
	ob.Gauge("flow_critical_delay").Set(f.CriticalDelay)
	return finish(f, nil)
}

// placementFromMapping builds the placement instance: one movable
// cell per emitted gate, boundary pads for the PIs and POs.
func placementFromMapping(nw *netlist.Network, subj *techmap.Subject, mp *techmap.Result, util float64) (*place.Problem, map[int]int, error) {
	cellOf := map[int]int{} // subject root id -> cell index
	for i, m := range mp.Matches {
		cellOf[m.Root] = i
	}
	n := len(mp.Matches)
	side := int(math.Ceil(math.Sqrt(float64(n) / util)))
	if side < 2 {
		side = 2
	}
	prob := &place.Problem{NCells: n, W: float64(side), H: float64(side)}

	padOf := map[string]int{}
	addPad := func(name string, i, total int) int {
		if id, ok := padOf[name]; ok {
			return id
		}
		t := float64(i) / float64(total)
		var x, y float64
		switch i % 4 {
		case 0:
			x, y = t*prob.W, 0
		case 1:
			x, y = prob.W, t*prob.H
		case 2:
			x, y = (1-t)*prob.W, prob.H
		default:
			x, y = 0, (1-t)*prob.H
		}
		id := len(prob.Pads)
		prob.Pads = append(prob.Pads, place.Pad{Name: name, X: x, Y: y})
		padOf[name] = id
		return id
	}
	ios := append([]string(nil), nw.Inputs...)
	ios = append(ios, nw.Outputs...)
	for i, name := range ios {
		addPad(name, i, len(ios))
	}

	// A net per driving subject node: driver gate or input leaf to
	// all consuming gates.
	consumers := map[int][]int{} // subject node id -> consuming cells
	for ci, m := range mp.Matches {
		for _, leaf := range m.Leaves {
			consumers[leaf] = append(consumers[leaf], ci)
		}
	}
	// Iterate driving nodes in sorted order: map-order iteration here
	// made net numbering — and hence routing, wirelength and DRC —
	// vary between identical runs, which breaks reproducible
	// telemetry snapshots.
	drivers := make([]int, 0, len(consumers))
	for node := range consumers {
		drivers = append(drivers, node)
	}
	sort.Ints(drivers)
	for _, node := range drivers {
		cons := consumers[node]
		net := place.Net{}
		seen := map[int]bool{}
		for _, c := range cons {
			if !seen[c] {
				net.Cells = append(net.Cells, c)
				seen[c] = true
			}
		}
		if dc, ok := cellOf[node]; ok {
			if !seen[dc] {
				net.Cells = append(net.Cells, dc)
			}
		} else {
			// Leaf is a primary input (or constant): pad if known.
			name := subj.Nodes[node].Name
			if id, ok := padOf[name]; ok {
				net.Pads = append(net.Pads, id)
			}
		}
		if len(net.Cells)+len(net.Pads) >= 2 {
			prob.Nets = append(prob.Nets, net)
		}
	}
	// Output pads connect to their driving gates.
	for _, out := range nw.Outputs {
		root, ok := subj.Roots[out]
		if !ok {
			continue
		}
		if c, ok := cellOf[root]; ok {
			prob.Nets = append(prob.Nets, place.Net{Cells: []int{c}, Pads: []int{padOf[out]}})
		}
	}
	if err := prob.Validate(); err != nil {
		return nil, nil, err
	}
	return prob, cellOf, nil
}

// routingFromPlacement derives two-pin routing requests from the
// placement (each placement net connects its extreme pins).
func routingFromPlacement(prob *place.Problem, pl *place.Placement, scale int, seed int64) (*route.Grid, []route.Net) {
	g := route.NewGrid(int(prob.W)*scale+2, int(prob.H)*scale+2, route.DefaultCost())
	used := map[route.Point]bool{}
	pin := func(x, y float64) (route.Point, bool) {
		base := route.Point{X: int(x * float64(scale)), Y: int(y * float64(scale)), L: 0}
		for dy := 0; dy < scale; dy++ {
			for dx := 0; dx < scale; dx++ {
				p := route.Point{X: base.X + dx, Y: base.Y + dy, L: 0}
				if g.In(p) && !used[p] {
					used[p] = true
					return p, true
				}
			}
		}
		return route.Point{}, false
	}
	var nets []route.Net
	for ni, n := range prob.Nets {
		type pt struct{ x, y float64 }
		var pts []pt
		for _, c := range n.Cells {
			pts = append(pts, pt{pl.X[c], pl.Y[c]})
		}
		for _, pd := range n.Pads {
			x := prob.Pads[pd].X
			y := prob.Pads[pd].Y
			// Clamp pad coordinates inside the grid.
			if x >= prob.W {
				x = prob.W - 0.5
			}
			if y >= prob.H {
				y = prob.H - 0.5
			}
			pts = append(pts, pt{x, y})
		}
		if len(pts) < 2 {
			continue
		}
		a, okA := pin(pts[0].x, pts[0].y)
		b, okB := pin(pts[len(pts)-1].x, pts[len(pts)-1].y)
		if !okA || !okB || a == b {
			continue
		}
		nets = append(nets, route.Net{Name: fmt.Sprintf("n%d", ni), A: a, B: b})
	}
	return g, nets
}

// timingFromMapping builds the gate-level timing graph, adding Elmore
// wire delays per routed net when wireModel is set.
func timingFromMapping(nw *netlist.Network, subj *techmap.Subject, mp *techmap.Result, f *Flow, cellOf map[int]int, wireModel bool) (*timing.Report, error) {
	delayOf := map[string]float64{}
	for _, g := range techmap.StandardLibrary() {
		delayOf[g.Name] = g.Delay
	}
	sigName := func(id int) string {
		n := subj.Nodes[id]
		if n.Kind == techmap.KInput {
			return n.Name
		}
		return fmt.Sprintf("n%d", id)
	}
	// Per-net wire delay from routed wirelength (uniform RC line).
	wireDelay := 0.0
	if wireModel && f.Routing != nil && len(f.Routing.Paths) > 0 {
		total := 0
		for _, p := range f.Routing.Paths {
			total += p.Wirelength()
		}
		avg := float64(total) / float64(len(f.Routing.Paths))
		t := timing.WireRC(1.0, 0.05, 0.1, int(avg)+1, 4, 0.2)
		d, err := t.SinkDelay()
		if err != nil {
			return nil, err
		}
		wireDelay = d
	}
	g := &timing.Graph{
		PIArrival:  map[string]float64{},
		PORequired: map[string]float64{},
	}
	for _, in := range subj.InputNames() {
		g.PIArrival[in] = 0
	}
	for _, m := range mp.Matches {
		var ins []string
		for _, leaf := range m.Leaves {
			ins = append(ins, sigName(leaf))
		}
		g.Gates = append(g.Gates, timing.Gate{
			Name:   fmt.Sprintf("%s_%d", m.Gate, m.Root),
			Output: sigName(m.Root),
			Inputs: ins,
			Delay:  delayOf[m.Gate] + wireDelay,
		})
	}
	// Outputs: signals of the mapped roots. Required times are set to
	// the worst arrival (two-pass), so the critical path reads slack 0
	// — the course's reporting convention when no clock is given.
	for _, root := range subj.Roots {
		sig := sigName(root)
		if _, isPI := g.PIArrival[sig]; isPI {
			continue // output is a feedthrough of an input
		}
		g.PORequired[sig] = 1e9
	}
	if len(g.PORequired) == 0 {
		return &timing.Report{Signals: map[string]timing.SignalTiming{}}, nil
	}
	first, err := timing.Analyze(g)
	if err != nil {
		return nil, err
	}
	for sig := range g.PORequired {
		g.PORequired[sig] = first.MaxArrival
	}
	return timing.Analyze(g)
}
