module vlsicad

go 1.22
