package vlsicad

import (
	"strings"
	"testing"

	"vlsicad/internal/bench"
)

const adderBLIF = `
.model adder
.inputs a b cin
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
`

func TestRunFlowAdder(t *testing.T) {
	f, err := RunFlow(strings.NewReader(adderBLIF), FlowOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equivalent {
		t.Error("synthesis should be verified equivalent")
	}
	if f.Area <= 0 || len(f.Mapping.Matches) == 0 {
		t.Error("mapping missing")
	}
	if f.HPWL <= 0 {
		t.Error("no wirelength")
	}
	if len(f.Routing.Failed) > 0 {
		t.Errorf("failed nets: %v", f.Routing.Failed)
	}
	if f.CriticalDelay <= 0 {
		t.Error("no timing")
	}
}

func TestRunFlowWithWireModelSlower(t *testing.T) {
	base, err := RunFlow(strings.NewReader(adderBLIF), FlowOpts{})
	if err != nil {
		t.Fatal(err)
	}
	wired, err := RunFlow(strings.NewReader(adderBLIF), FlowOpts{WireModel: true})
	if err != nil {
		t.Fatal(err)
	}
	if wired.CriticalDelay <= base.CriticalDelay {
		t.Errorf("wire model should add delay: %g vs %g", wired.CriticalDelay, base.CriticalDelay)
	}
}

func TestRunFlowSynthesisSavesLiterals(t *testing.T) {
	nw := bench.Network(bench.NetworkSpec{Name: "s", Inputs: 8, Nodes: 30, Outputs: 4}, 9)
	f, err := RunFlowOnNetwork(nw, FlowOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if f.LiteralsAfter > f.LiteralsBefore {
		t.Errorf("synthesis grew literals: %d -> %d", f.LiteralsBefore, f.LiteralsAfter)
	}
	if !f.Equivalent {
		t.Error("synthesis verification failed")
	}
}

func TestRunFlowBadInput(t *testing.T) {
	if _, err := RunFlow(strings.NewReader("garbage"), FlowOpts{}); err == nil {
		t.Error("garbage BLIF should fail")
	}
}

func TestRunFlowVerifyMapping(t *testing.T) {
	f, err := RunFlow(strings.NewReader(adderBLIF), FlowOpts{VerifyMapping: true})
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equivalent {
		t.Error("flow with mapping verification should succeed")
	}
}

func TestRunFlowDRCClean(t *testing.T) {
	f, err := RunFlow(strings.NewReader(adderBLIF), FlowOpts{CheckDRC: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.DRC) != 0 {
		t.Errorf("legally routed design has %d DRC violations: %v", len(f.DRC), f.DRC[0])
	}
}

func TestRunFlowDelayObjective(t *testing.T) {
	f, err := RunFlow(strings.NewReader(adderBLIF), FlowOpts{MapObjective: 1}) // MinDelay
	if err != nil {
		t.Fatal(err)
	}
	if f.CriticalDelay <= 0 {
		t.Error("no timing under delay mapping")
	}
}
