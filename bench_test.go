package vlsicad

// One benchmark per figure of the paper (see DESIGN.md §3 and
// EXPERIMENTS.md). Each bench regenerates the figure's data from the
// corresponding modules and reports the headline numbers as benchmark
// metrics so `go test -bench` reproduces the paper's rows; run with
// -v for the full series.

import (
	"strings"
	"testing"
	"time"

	"vlsicad/internal/bench"
	"vlsicad/internal/cube"
	"vlsicad/internal/grader"
	"vlsicad/internal/mooc"
	"vlsicad/internal/netlist"
	"vlsicad/internal/place"
	"vlsicad/internal/portal"
	"vlsicad/internal/repair"
	"vlsicad/internal/route"
)

// BenchmarkFig1ConceptMap regenerates the 102-concept / 948-slide
// concept map with the Figure 1 BDD snapshot.
func BenchmarkFig1ConceptMap(b *testing.B) {
	var concepts, slides int
	for i := 0; i < b.N; i++ {
		cm := mooc.ConceptMap()
		concepts, slides, _ = mooc.ConceptStats(cm)
	}
	b.ReportMetric(float64(concepts), "concepts")
	b.ReportMetric(float64(slides), "slides")
}

// BenchmarkFig2LectureCatalog regenerates the 69-video catalog:
// average 15 minutes, 17.25 hours, with the efficiency comparison.
func BenchmarkFig2LectureCatalog(b *testing.B) {
	var count int
	var hours, avg float64
	for i := 0; i < b.N; i++ {
		count, hours, avg = mooc.LectureStats(mooc.Lectures())
	}
	e := mooc.CourseEfficiency()
	b.ReportMetric(float64(count), "videos")
	b.ReportMetric(hours, "total_hours")
	b.ReportMetric(avg, "avg_minutes")
	b.ReportMetric(100*e.ContentFraction(), "content_pct")
	b.ReportMetric(100*e.TimeFraction(), "time_pct")
}

// BenchmarkFig4ToolPortal exercises the Figure 4 architecture: one
// text job through each of the five deployed tools.
func BenchmarkFig4ToolPortal(b *testing.B) {
	jobs := []struct{ tool, input string }{
		{"kbdd", "var a b c\nf = a&b|c\nsatcount f\n"},
		{"espresso", ".i 3\n.o 1\n111 1\n110 1\n101 1\n011 1\n.e\n"},
		{"minisat", "p cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n"},
		{"sis", ".model m\n.inputs a b c d\n.outputs x\n.names a b c d x\n11-- 1\n--11 1\n.end\nfx\nprint_stats\n"},
		{"axb", "2 cg\n2 -1\n-1 2\n1 1\n"},
	}
	for i := 0; i < b.N; i++ {
		p := portal.New(5 * time.Second)
		if err := portal.CourseTools(p); err != nil {
			b.Fatal(err)
		}
		for _, j := range jobs {
			res, err := p.Submit("bench", j.tool, j.input)
			if err != nil || res.Err != "" {
				b.Fatalf("%s: %v %s", j.tool, err, res.Err)
			}
		}
	}
	b.ReportMetric(float64(len(jobs)), "tools")
}

// BenchmarkFig5Projects runs all four software projects at course
// scale: URP complement, BDD network repair, quadratic placement and
// maze routing.
func BenchmarkFig5Projects(b *testing.B) {
	spec, err := netlist.ParseBLIF(strings.NewReader(`
.model s
.inputs a b c
.outputs z
.names a b t
11 1
.names t c z
1- 1
-1 1
.end
`))
	if err != nil {
		b.Fatal(err)
	}
	on, _ := cube.ParseCover([]string{"11--", "--11", "0-0-"})
	c := bench.SmallSuite()[0]
	prob := bench.Placement(c, 1)

	for i := 0; i < b.N; i++ {
		// Project 1: URP complement.
		comp := on.Complement()
		if comp.IsEmpty() {
			b.Fatal("bad complement")
		}
		// Project 2: repair an injected fault.
		impl := spec.Clone()
		if err := repair.InjectFault(impl, "t"); err != nil {
			b.Fatal(err)
		}
		res, err := repair.Repair(impl, spec, "t")
		if err != nil || !res.Repaired {
			b.Fatal("repair failed")
		}
		// Project 3: quadratic placement.
		pl, err := place.Quadratic(prob, place.QuadraticOpts{})
		if err != nil {
			b.Fatal(err)
		}
		leg, err := place.Legalize(prob, pl)
		if err != nil {
			b.Fatal(err)
		}
		// Project 4: route the placed design.
		g, nets := bench.Routing(c, leg, prob, 1, 0.02)
		rres := route.RouteAll(g, nets, route.Opts{Alg: route.AStar, Order: route.OrderShortFirst})
		if len(rres.Paths) == 0 {
			b.Fatal("routing failed entirely")
		}
	}
}

// BenchmarkFig6RouterUnitTests runs the Figure 6 unit-test battery on
// the reference router.
func BenchmarkFig6RouterUnitTests(b *testing.B) {
	var score float64
	for i := 0; i < b.N; i++ {
		rep := grader.RunRouterBattery(grader.ReferenceRouter)
		score = rep.Score()
	}
	b.ReportMetric(100*score, "score_pct")
}

// BenchmarkFig7ExtraCredit reproduces the extra-credit experience:
// place and route an MCNC-scale benchmark end to end and report
// wirelength and completion rate.
func BenchmarkFig7ExtraCredit(b *testing.B) {
	c := bench.Suite()[0] // fract
	p := bench.Placement(c, 3)
	var hpwl, completion float64
	var wl int
	for i := 0; i < b.N; i++ {
		pl, err := place.Quadratic(p, place.QuadraticOpts{})
		if err != nil {
			b.Fatal(err)
		}
		leg, err := place.Legalize(p, pl)
		if err != nil {
			b.Fatal(err)
		}
		hpwl = p.HPWL(leg)
		g, nets := bench.Routing(c, leg, p, 3, 0.02)
		res := route.RouteAll(g, nets, route.Opts{
			Alg: route.AStar, Order: route.OrderShortFirst, RipupRounds: 5, Seed: 3,
		})
		completion = float64(len(res.Paths)) / float64(len(nets))
		wl = res.Length
	}
	b.ReportMetric(hpwl, "hpwl")
	b.ReportMetric(100*completion, "completion_pct")
	b.ReportMetric(float64(wl), "wirelength")
}

// BenchmarkFig8Funnel regenerates the participation funnel.
func BenchmarkFig8Funnel(b *testing.B) {
	var f mooc.Funnel
	for i := 0; i < b.N; i++ {
		f = mooc.Simulate(mooc.PaperParams(), int64(i)+1).Funnel()
	}
	b.ReportMetric(float64(f.Registered), "registered")
	b.ReportMetric(float64(f.WatchedVideo), "watched")
	b.ReportMetric(float64(f.DidHomework), "homework")
	b.ReportMetric(float64(f.TriedSoftware), "software")
	b.ReportMetric(float64(f.TookFinal), "final")
	b.ReportMetric(float64(f.Certificates), "certs")
}

// BenchmarkFig9Viewership regenerates the per-lecture viewer series
// and reports the paper's three landmarks.
func BenchmarkFig9Viewership(b *testing.B) {
	var v []int
	for i := 0; i < b.N; i++ {
		v = mooc.Simulate(mooc.PaperParams(), int64(i)+1).Viewership()
	}
	b.ReportMetric(float64(v[0]), "intro_viewers")
	b.ReportMetric(float64(v[19]), "midcourse_viewers")
	b.ReportMetric(float64(v[68]), "final_viewers")
	if b.N > 0 {
		b.Logf("series: %v", v)
	}
}

// BenchmarkFig10Demographics regenerates the demographic summary.
func BenchmarkFig10Demographics(b *testing.B) {
	var d mooc.Demographics
	for i := 0; i < b.N; i++ {
		d = mooc.Simulate(mooc.PaperParams(), int64(i)+1).Demographics()
	}
	b.ReportMetric(d.AvgAge, "avg_age")
	b.ReportMetric(100*d.FemaleShare, "female_pct")
	b.ReportMetric(100*d.BSShare, "bs_pct")
	b.ReportMetric(100*d.MSPhDShare, "msphd_pct")
	b.Logf("top countries: %v", d.TopCountries[:10])
}

// BenchmarkFig11Survey regenerates the word cloud.
func BenchmarkFig11Survey(b *testing.B) {
	var wc []mooc.WordCount
	for i := 0; i < b.N; i++ {
		wc = mooc.MineWordCloud(mooc.SurveyResponses(1000, int64(i)+1))
	}
	b.ReportMetric(float64(len(wc)), "distinct_words")
	top := wc
	if len(top) > 10 {
		top = top[:10]
	}
	b.Logf("top words: %v", top)
}

// BenchmarkFullFlow measures the complete logic-to-layout flow on the
// quickstart adder (the §5 "on ramp" demonstration).
func BenchmarkFullFlow(b *testing.B) {
	const adder = `
.model adder
.inputs a b cin
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
`
	for i := 0; i < b.N; i++ {
		if _, err := RunFlow(strings.NewReader(adder), FlowOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}
